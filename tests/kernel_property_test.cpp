// Randomized property tests for the blocked matrix kernels.
//
// The blocked dense GEMM, the tiled boolean products, and the word-block
// bit transpose must agree exactly with their naive references on shapes
// that exercise every edge case: dimensions that are odd, prime, smaller
// than one register tile, and straddling cache-block boundaries. Dense
// operands use small-integer values, where float accumulation is exact in
// any order, so EXPECT_EQ compares bit-identical payloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "matrix/bool_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"
#include "matrix/sparse_kernels.h"
#include "matrix/sparse_matrix.h"

namespace jpmm {
namespace {

// Not the shared 0/1 generator: multi-valued entries exercise the exact
// small-integer accumulation the kernels promise.
Matrix RandomIntMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      // Values in {0, 1, 2, 3}, biased toward 0 like an adjacency matrix.
      if (rng.NextBool(0.4)) {
        m.Set(i, j, static_cast<float>(1 + rng.NextBounded(3)));
      }
    }
  }
  return m;
}

// Shapes chosen to straddle the register tile (8 x 32), the cache blocks
// (MC = 128, KC = 512, NC = 2048), and the 64-bit word boundary.
struct Shape {
  size_t u, v, w;
};

const Shape kShapes[] = {
    {1, 1, 1},      {3, 5, 7},      {8, 32, 8},     {9, 33, 31},
    {7, 513, 65},   {64, 64, 64},   {65, 127, 63},  {129, 257, 33},
    {130, 512, 97}, {41, 1030, 29}, {256, 19, 300},
};

TEST(KernelProperty, BlockedGemmMatchesNaiveOnIrregularShapes) {
  uint64_t seed = 1;
  for (const Shape& s : kShapes) {
    Matrix a = RandomIntMatrix(s.u, s.v, seed++);
    Matrix b = RandomIntMatrix(s.v, s.w, seed++);
    const Matrix want = MultiplyNaive(a, b);
    EXPECT_EQ(Multiply(a, b, 1), want)
        << "u=" << s.u << " v=" << s.v << " w=" << s.w;
    EXPECT_EQ(MultiplyScalarReference(a, b), want)
        << "scalar reference, u=" << s.u << " v=" << s.v << " w=" << s.w;
  }
}

TEST(KernelProperty, BlockedGemmMatchesNaiveMultithreaded) {
  Matrix a = RandomIntMatrix(201, 307, 77);
  Matrix b = RandomIntMatrix(307, 143, 78);
  const Matrix want = MultiplyNaive(a, b);
  for (int threads : {2, 3, 5}) {
    EXPECT_EQ(Multiply(a, b, threads), want) << threads << " threads";
  }
}

TEST(KernelProperty, RowRangeMatchesNaiveAtEveryBlockOffset) {
  Matrix a = RandomIntMatrix(70, 143, 91);
  Matrix b = RandomIntMatrix(143, 89, 92);
  const Matrix want = MultiplyNaive(a, b);
  for (size_t block : {1u, 7u, 64u}) {
    std::vector<float> buf(block * b.cols());
    for (size_t r0 = 0; r0 < a.rows(); r0 += block) {
      const size_t r1 = std::min(a.rows(), r0 + block);
      MultiplyRowRange(a, b, r0, r1, buf);
      for (size_t i = r0; i < r1; ++i) {
        for (size_t j = 0; j < b.cols(); ++j) {
          ASSERT_EQ(buf[(i - r0) * b.cols() + j], want.At(i, j))
              << "block=" << block << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelProperty, BoolProductMatchesReferenceAcrossDensities) {
  uint64_t seed = 100;
  for (double density : {0.01, 0.1, 0.5, 0.95}) {
    for (const Shape& s : kShapes) {
      BoolMatrix a = RandomBoolMatrix(s.u, s.v, density, seed++);
      BoolMatrix bt = RandomBoolMatrix(s.w, s.v, density, seed++);
      const BoolMatrix want = BoolProductNaive(a, bt);
      const BoolMatrix got = BoolProduct(a, bt, 1);
      ASSERT_EQ(got.rows(), want.rows());
      ASSERT_EQ(got.words_per_row(), want.words_per_row());
      for (size_t i = 0; i < got.rows(); ++i) {
        ASSERT_EQ(std::memcmp(got.RowWords(i), want.RowWords(i),
                              got.words_per_row() * sizeof(uint64_t)),
                  0)
            << "density=" << density << " u=" << s.u << " v=" << s.v
            << " w=" << s.w << " row=" << i;
      }
    }
  }
}

TEST(KernelProperty, CountProductMatchesReferenceAcrossDensities) {
  uint64_t seed = 500;
  for (double density : {0.05, 0.4}) {
    for (const Shape& s : kShapes) {
      BoolMatrix a = RandomBoolMatrix(s.u, s.v, density, seed++);
      BoolMatrix bt = RandomBoolMatrix(s.w, s.v, density, seed++);
      EXPECT_EQ(CountProduct(a, bt, 1), CountProductNaive(a, bt))
          << "density=" << density << " u=" << s.u << " v=" << s.v
          << " w=" << s.w;
    }
  }
}

TEST(KernelProperty, BlockedProductsMatchReferenceMultithreaded) {
  BoolMatrix a = RandomBoolMatrix(203, 517, 0.2, 900);
  BoolMatrix bt = RandomBoolMatrix(131, 517, 0.2, 901);
  const BoolMatrix want = BoolProductNaive(a, bt);
  for (int threads : {2, 4}) {
    const BoolMatrix got = BoolProduct(a, bt, threads);
    for (size_t i = 0; i < got.rows(); ++i) {
      ASSERT_EQ(std::memcmp(got.RowWords(i), want.RowWords(i),
                            got.words_per_row() * sizeof(uint64_t)),
                0)
          << threads << " threads, row " << i;
    }
    EXPECT_EQ(CountProduct(a, bt, threads), CountProductNaive(a, bt))
        << threads << " threads";
  }
}

TEST(KernelProperty, TransposeMatchesPerBitReferenceOnOddShapes) {
  uint64_t seed = 1000;
  for (size_t rows : {1u, 7u, 63u, 64u, 65u, 200u}) {
    for (size_t cols : {1u, 31u, 64u, 129u, 300u}) {
      const BoolMatrix m = RandomBoolMatrix(rows, cols, 0.3, seed++);
      const BoolMatrix t = m.Transposed();
      ASSERT_EQ(t.rows(), cols);
      ASSERT_EQ(t.cols(), rows);
      for (size_t i = 0; i < rows; ++i) {
        for (size_t j = 0; j < cols; ++j) {
          ASSERT_EQ(m.Test(i, j), t.Test(j, i))
              << rows << "x" << cols << " at (" << i << ", " << j << ")";
        }
      }
    }
  }
}

// ---- Per-ISA dispatch sweeps ---------------------------------------------
//
// Every dispatch level the host supports must produce byte-identical output
// on shapes that stress the explicit kernels' edge handling: partial
// register tiles (cols % 32 in {1, 15, 17, 31}), single-row/column
// operands, empty operands, all-zero operands, and word-tail masks
// (words_per_row % 8 != 0). Unsupported levels are skipped, not failed —
// the same test list runs on any machine.

std::vector<KernelIsa> SupportedIsas() {
  std::vector<KernelIsa> v{KernelIsa::kPortable};
  if (IsaSupported(KernelIsa::kAvx2)) v.push_back(KernelIsa::kAvx2);
  if (IsaSupported(KernelIsa::kAvx512)) v.push_back(KernelIsa::kAvx512);
  return v;
}

TEST(KernelPropertyIsa, GemmMatchesNaivePerIsaOnEdgeShapes) {
  // cols tails 1/15/17/31 straddle both the AVX-512 mask boundary (16) and
  // the AVX2 half boundary (8/16); kMR-partial row tails via u % 8 != 0.
  const Shape kEdge[] = {
      {1, 1, 1},    {1, 64, 33},  {64, 1, 1},    {8, 32, 32},
      {9, 33, 31},  {5, 17, 15},  {13, 100, 17}, {7, 513, 47},
      {130, 70, 63},
  };
  uint64_t seed = 5000;
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsaOverride force(isa);
    for (const Shape& s : kEdge) {
      Matrix a = RandomIntMatrix(s.u, s.v, seed++);
      Matrix b = RandomIntMatrix(s.v, s.w, seed++);
      const Matrix want = MultiplyNaive(a, b);
      EXPECT_EQ(Multiply(a, b, 1), want)
          << KernelIsaName(isa) << " u=" << s.u << " v=" << s.v
          << " w=" << s.w;
    }
    // Empty and all-zero operands.
    Matrix empty_a(0, 5), b5(5, 3);
    EXPECT_EQ(Multiply(empty_a, b5, 1).rows(), 0u) << KernelIsaName(isa);
    Matrix za(11, 37), zb(37, 19);  // value-initialized: all zero
    const Matrix zc = Multiply(za, zb, 1);
    for (size_t i = 0; i < zc.rows(); ++i) {
      for (size_t j = 0; j < zc.cols(); ++j) {
        ASSERT_EQ(zc.At(i, j), 0.0f) << KernelIsaName(isa);
      }
    }
  }
}

TEST(KernelPropertyIsa, GemmIdenticalBytesAcrossIsaLevels) {
  // Stronger than matching the oracle: the levels must match EACH OTHER
  // bit-for-bit, so a plan calibrated under one level replays under another.
  Matrix a = RandomIntMatrix(67, 231, 6100);
  Matrix b = RandomIntMatrix(231, 93, 6101);
  std::vector<Matrix> results;
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsaOverride force(isa);
    results.push_back(Multiply(a, b, 1));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "level " << i << " vs portable";
  }
}

TEST(KernelPropertyIsa, BoolProductsMatchNaivePerIsaOnWordTails) {
  // cols chosen so words_per_row hits 1, 15, 17, and 33 — the word-tail
  // masks (wn % 8) of the VPOPCNTDQ kernel, plus a multi-slice case.
  const size_t kCols[] = {1, 63, 960, 1087, 2050};
  uint64_t seed = 7000;
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsaOverride force(isa);
    for (size_t cols : kCols) {
      BoolMatrix a = RandomBoolMatrix(9, cols, 0.2, seed++);
      BoolMatrix bt = RandomBoolMatrix(7, cols, 0.2, seed++);
      const BoolMatrix want_bool = BoolProductNaive(a, bt);
      const BoolMatrix got_bool = BoolProduct(a, bt, 1);
      for (size_t i = 0; i < got_bool.rows(); ++i) {
        ASSERT_EQ(std::memcmp(got_bool.RowWords(i), want_bool.RowWords(i),
                              got_bool.words_per_row() * sizeof(uint64_t)),
                  0)
            << KernelIsaName(isa) << " cols=" << cols << " row=" << i;
      }
      EXPECT_EQ(CountProduct(a, bt, 1), CountProductNaive(a, bt))
          << KernelIsaName(isa) << " cols=" << cols;
    }
  }
}

TEST(KernelPropertyIsa, CsrCsrProductMatchesReferencePerIsa) {
  uint64_t seed = 8000;
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsaOverride force(isa);
    for (const auto& [dim, density] : std::vector<std::pair<size_t, double>>{
             {17, 0.3}, {130, 0.05}, {257, 0.01}}) {
      const Matrix ad = RandomDenseMatrix(dim, dim, density, seed++);
      const Matrix bd = RandomDenseMatrix(dim, dim, density, seed++);
      const CsrMatrix a = CsrMatrix::FromDense(ad);
      const CsrMatrix b = CsrMatrix::FromDense(bd);
      const Matrix want = CsrProductReference(a, bd);
      EXPECT_EQ(CsrCsrProduct(a, b, 1), want)
          << KernelIsaName(isa) << " dim=" << dim << " density=" << density;
    }
  }
}

TEST(KernelPropertyIsa, ExpandRowHandlesDuplicateColumns) {
  // CSR rows never repeat a column, so production inputs cannot hit the
  // conflict-lane replay of the AVX-512 expansion. The primitive's contract
  // allows duplicates, so exercise them head-on: every level must agree
  // with the portable expansion on lists dense with repeats (including
  // 16 copies of one value filling a whole vector block).
  std::vector<uint32_t> js;
  Rng rng(42);
  for (size_t i = 0; i < 200; ++i) js.push_back(rng.NextBounded(13));
  for (size_t i = 0; i < 16; ++i) js.push_back(7);
  for (KernelIsa isa : SupportedIsas()) {
    const internal::ExpandRowFn expand = internal::SelectExpandRow(isa);
    StampCounter counter(64);
    AlignedVector<uint32_t> touched;
    counter.NewEpoch();
    expand(js.data(), js.size(), &counter, &touched);

    StampCounter want_counter(64);
    AlignedVector<uint32_t> want_touched;
    want_counter.NewEpoch();
    internal::ExpandRowPortable(js.data(), js.size(), &want_counter,
                                &want_touched);

    std::sort(touched.begin(), touched.end());
    std::sort(want_touched.begin(), want_touched.end());
    ASSERT_EQ(touched, want_touched) << KernelIsaName(isa);
    for (uint32_t j : want_touched) {
      EXPECT_EQ(counter.Get(j), want_counter.Get(j))
          << KernelIsaName(isa) << " col " << j;
    }
  }
}

// ---- Aligned allocation layer --------------------------------------------

TEST(AlignedBuffer, VmallocAndVectorAre64ByteAligned) {
  for (size_t n : {1u, 7u, 63u, 64u, 1000u, 100001u}) {
    const auto buf = vmalloc<float>(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kDefaultSlabAlign, 0u)
        << "vmalloc n=" << n;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(buf.data()[i], 0.0f);  // value-init

    AlignedVector<float> v(n, 1.0f);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kDefaultSlabAlign, 0u)
        << "vector n=" << n;
  }
  // Wider alignment on request.
  const auto wide = vmalloc<uint64_t, 4096>(17);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(wide.data()) % 4096, 0u);
}

TEST(AlignedBuffer, PackToleratesUnalignedSourceRows) {
  // Odd column counts make every dense row after the first start at a
  // non-64-byte offset; the packing (and the masked load tails behind it)
  // must not care. Shapes also cross the kKC=512 panel boundary so packed
  // panels get resized and re-aligned mid-product.
  uint64_t seed = 9000;
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsaOverride force(isa);
    for (const Shape& s : {Shape{9, 515, 35}, Shape{17, 1027, 61}}) {
      Matrix a = RandomIntMatrix(s.u, s.v, seed++);
      Matrix b = RandomIntMatrix(s.v, s.w, seed++);
      EXPECT_EQ(Multiply(a, b, 1), MultiplyNaive(a, b))
          << KernelIsaName(isa) << " u=" << s.u << " v=" << s.v
          << " w=" << s.w;
    }
  }
}

TEST(AlignedBuffer, PackedBReusableAcrossIsaLevels) {
  // A PackedB built once must serve every dispatch level: the packed layout
  // is part of the kernel contract, not per-ISA.
  Matrix a = RandomIntMatrix(33, 129, 9100);
  Matrix b = RandomIntMatrix(129, 75, 9101);
  const PackedB packed(b);
  const Matrix want = MultiplyNaive(a, b);
  std::vector<float> buf(a.rows() * b.cols());
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsaOverride force(isa);
    MultiplyRowRange(a, packed, 0, a.rows(), buf);
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < b.cols(); ++j) {
        ASSERT_EQ(buf[i * b.cols() + j], want.At(i, j))
            << KernelIsaName(isa) << " (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(KernelProperty, TransposeRoundTripsOnWordBoundaryStraddle) {
  const BoolMatrix m = RandomBoolMatrix(127, 193, 0.4, 2000);
  const BoolMatrix round = m.Transposed().Transposed();
  ASSERT_EQ(round.rows(), m.rows());
  ASSERT_EQ(round.cols(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    ASSERT_EQ(std::memcmp(round.RowWords(i), m.RowWords(i),
                          m.words_per_row() * sizeof(uint64_t)),
              0)
        << "row " << i;
  }
}

}  // namespace
}  // namespace jpmm
