// Randomized property tests for the blocked matrix kernels.
//
// The blocked dense GEMM, the tiled boolean products, and the word-block
// bit transpose must agree exactly with their naive references on shapes
// that exercise every edge case: dimensions that are odd, prime, smaller
// than one register tile, and straddling cache-block boundaries. Dense
// operands use small-integer values, where float accumulation is exact in
// any order, so EXPECT_EQ compares bit-identical payloads.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "matrix/bool_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"

namespace jpmm {
namespace {

// Not the shared 0/1 generator: multi-valued entries exercise the exact
// small-integer accumulation the kernels promise.
Matrix RandomIntMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      // Values in {0, 1, 2, 3}, biased toward 0 like an adjacency matrix.
      if (rng.NextBool(0.4)) {
        m.Set(i, j, static_cast<float>(1 + rng.NextBounded(3)));
      }
    }
  }
  return m;
}

// Shapes chosen to straddle the register tile (8 x 32), the cache blocks
// (MC = 128, KC = 512, NC = 2048), and the 64-bit word boundary.
struct Shape {
  size_t u, v, w;
};

const Shape kShapes[] = {
    {1, 1, 1},      {3, 5, 7},      {8, 32, 8},     {9, 33, 31},
    {7, 513, 65},   {64, 64, 64},   {65, 127, 63},  {129, 257, 33},
    {130, 512, 97}, {41, 1030, 29}, {256, 19, 300},
};

TEST(KernelProperty, BlockedGemmMatchesNaiveOnIrregularShapes) {
  uint64_t seed = 1;
  for (const Shape& s : kShapes) {
    Matrix a = RandomIntMatrix(s.u, s.v, seed++);
    Matrix b = RandomIntMatrix(s.v, s.w, seed++);
    const Matrix want = MultiplyNaive(a, b);
    EXPECT_EQ(Multiply(a, b, 1), want)
        << "u=" << s.u << " v=" << s.v << " w=" << s.w;
    EXPECT_EQ(MultiplyScalarReference(a, b), want)
        << "scalar reference, u=" << s.u << " v=" << s.v << " w=" << s.w;
  }
}

TEST(KernelProperty, BlockedGemmMatchesNaiveMultithreaded) {
  Matrix a = RandomIntMatrix(201, 307, 77);
  Matrix b = RandomIntMatrix(307, 143, 78);
  const Matrix want = MultiplyNaive(a, b);
  for (int threads : {2, 3, 5}) {
    EXPECT_EQ(Multiply(a, b, threads), want) << threads << " threads";
  }
}

TEST(KernelProperty, RowRangeMatchesNaiveAtEveryBlockOffset) {
  Matrix a = RandomIntMatrix(70, 143, 91);
  Matrix b = RandomIntMatrix(143, 89, 92);
  const Matrix want = MultiplyNaive(a, b);
  for (size_t block : {1u, 7u, 64u}) {
    std::vector<float> buf(block * b.cols());
    for (size_t r0 = 0; r0 < a.rows(); r0 += block) {
      const size_t r1 = std::min(a.rows(), r0 + block);
      MultiplyRowRange(a, b, r0, r1, buf);
      for (size_t i = r0; i < r1; ++i) {
        for (size_t j = 0; j < b.cols(); ++j) {
          ASSERT_EQ(buf[(i - r0) * b.cols() + j], want.At(i, j))
              << "block=" << block << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelProperty, BoolProductMatchesReferenceAcrossDensities) {
  uint64_t seed = 100;
  for (double density : {0.01, 0.1, 0.5, 0.95}) {
    for (const Shape& s : kShapes) {
      BoolMatrix a = RandomBoolMatrix(s.u, s.v, density, seed++);
      BoolMatrix bt = RandomBoolMatrix(s.w, s.v, density, seed++);
      const BoolMatrix want = BoolProductNaive(a, bt);
      const BoolMatrix got = BoolProduct(a, bt, 1);
      ASSERT_EQ(got.rows(), want.rows());
      ASSERT_EQ(got.words_per_row(), want.words_per_row());
      for (size_t i = 0; i < got.rows(); ++i) {
        ASSERT_EQ(std::memcmp(got.RowWords(i), want.RowWords(i),
                              got.words_per_row() * sizeof(uint64_t)),
                  0)
            << "density=" << density << " u=" << s.u << " v=" << s.v
            << " w=" << s.w << " row=" << i;
      }
    }
  }
}

TEST(KernelProperty, CountProductMatchesReferenceAcrossDensities) {
  uint64_t seed = 500;
  for (double density : {0.05, 0.4}) {
    for (const Shape& s : kShapes) {
      BoolMatrix a = RandomBoolMatrix(s.u, s.v, density, seed++);
      BoolMatrix bt = RandomBoolMatrix(s.w, s.v, density, seed++);
      EXPECT_EQ(CountProduct(a, bt, 1), CountProductNaive(a, bt))
          << "density=" << density << " u=" << s.u << " v=" << s.v
          << " w=" << s.w;
    }
  }
}

TEST(KernelProperty, BlockedProductsMatchReferenceMultithreaded) {
  BoolMatrix a = RandomBoolMatrix(203, 517, 0.2, 900);
  BoolMatrix bt = RandomBoolMatrix(131, 517, 0.2, 901);
  const BoolMatrix want = BoolProductNaive(a, bt);
  for (int threads : {2, 4}) {
    const BoolMatrix got = BoolProduct(a, bt, threads);
    for (size_t i = 0; i < got.rows(); ++i) {
      ASSERT_EQ(std::memcmp(got.RowWords(i), want.RowWords(i),
                            got.words_per_row() * sizeof(uint64_t)),
                0)
          << threads << " threads, row " << i;
    }
    EXPECT_EQ(CountProduct(a, bt, threads), CountProductNaive(a, bt))
        << threads << " threads";
  }
}

TEST(KernelProperty, TransposeMatchesPerBitReferenceOnOddShapes) {
  uint64_t seed = 1000;
  for (size_t rows : {1u, 7u, 63u, 64u, 65u, 200u}) {
    for (size_t cols : {1u, 31u, 64u, 129u, 300u}) {
      const BoolMatrix m = RandomBoolMatrix(rows, cols, 0.3, seed++);
      const BoolMatrix t = m.Transposed();
      ASSERT_EQ(t.rows(), cols);
      ASSERT_EQ(t.cols(), rows);
      for (size_t i = 0; i < rows; ++i) {
        for (size_t j = 0; j < cols; ++j) {
          ASSERT_EQ(m.Test(i, j), t.Test(j, i))
              << rows << "x" << cols << " at (" << i << ", " << j << ")";
        }
      }
    }
  }
}

TEST(KernelProperty, TransposeRoundTripsOnWordBoundaryStraddle) {
  const BoolMatrix m = RandomBoolMatrix(127, 193, 0.4, 2000);
  const BoolMatrix round = m.Transposed().Transposed();
  ASSERT_EQ(round.rows(), m.rows());
  ASSERT_EQ(round.cols(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    ASSERT_EQ(std::memcmp(round.RowWords(i), m.RowWords(i),
                          m.words_per_row() * sizeof(uint64_t)),
              0)
        << "row " << i;
  }
}

}  // namespace
}  // namespace jpmm
