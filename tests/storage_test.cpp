// Unit tests for src/storage: relations, CSR indexes, degree statistics,
// dictionary, loader, set family, catalog.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/catalog.h"
#include "storage/dictionary.h"
#include "storage/index.h"
#include "storage/loader.h"
#include "storage/relation.h"
#include "storage/set_family.h"
#include "storage/stats.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

BinaryRelation SmallRel() {
  BinaryRelation r;
  r.Add(0, 1);
  r.Add(0, 2);
  r.Add(2, 1);
  r.Add(2, 1);  // duplicate
  r.Add(5, 0);
  r.Finalize();
  return r;
}

TEST(BinaryRelation, FinalizeDeduplicatesAndSorts) {
  BinaryRelation r = SmallRel();
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(std::is_sorted(r.tuples().begin(), r.tuples().end()));
}

TEST(BinaryRelation, DomainsAndDistincts) {
  BinaryRelation r = SmallRel();
  EXPECT_EQ(r.num_x(), 6u);
  EXPECT_EQ(r.num_y(), 3u);
  EXPECT_EQ(r.distinct_x(), 3u);  // 0, 2, 5
  EXPECT_EQ(r.distinct_y(), 3u);  // 0, 1, 2
}

TEST(BinaryRelation, EmptyRelation) {
  BinaryRelation r;
  r.Finalize();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.num_x(), 0u);
  EXPECT_EQ(r.distinct_x(), 0u);
}

TEST(BinaryRelation, ReversedSwapsColumns) {
  BinaryRelation r = SmallRel();
  BinaryRelation rev = r.Reversed();
  EXPECT_EQ(rev.size(), r.size());
  EXPECT_EQ(rev.num_x(), r.num_y());
  EXPECT_EQ(rev.num_y(), r.num_x());
  for (const Tuple& t : rev.tuples()) {
    BinaryRelation back;
    back.Add(t.y, t.x);
    back.Finalize();
    EXPECT_TRUE(std::binary_search(r.tuples().begin(), r.tuples().end(),
                                   back.tuples()[0]));
  }
}

TEST(IndexedRelation, AdjacencyAndDegrees) {
  BinaryRelation r = SmallRel();
  IndexedRelation idx(r);
  EXPECT_EQ(idx.num_tuples(), 4u);
  EXPECT_EQ(idx.DegX(0), 2u);
  EXPECT_EQ(idx.DegX(1), 0u);
  EXPECT_EQ(idx.DegX(2), 1u);
  EXPECT_EQ(idx.DegY(1), 2u);
  ASSERT_EQ(idx.YsOf(0).size(), 2u);
  EXPECT_EQ(idx.YsOf(0)[0], 1u);
  EXPECT_EQ(idx.YsOf(0)[1], 2u);
  ASSERT_EQ(idx.XsOf(1).size(), 2u);
  EXPECT_EQ(idx.XsOf(1)[0], 0u);
  EXPECT_EQ(idx.XsOf(1)[1], 2u);
}

TEST(IndexedRelation, OutOfRangeSpansAreEmpty) {
  IndexedRelation idx(SmallRel());
  EXPECT_TRUE(idx.YsOf(999).empty());
  EXPECT_TRUE(idx.XsOf(999).empty());
  EXPECT_EQ(idx.DegX(999), 0u);
}

TEST(IndexedRelation, ContainsBinarySearch) {
  IndexedRelation idx(SmallRel());
  EXPECT_TRUE(idx.Contains(0, 1));
  EXPECT_TRUE(idx.Contains(5, 0));
  EXPECT_FALSE(idx.Contains(0, 0));
  EXPECT_FALSE(idx.Contains(1, 1));
}

TEST(IndexedRelation, ToTuplesRoundTrip) {
  BinaryRelation r = testutil::RandomRelation(50, 40, 300, 0.5, 77);
  IndexedRelation idx(r);
  EXPECT_EQ(idx.ToTuples(), r.tuples());
}

TEST(IndexedRelation, AdjacencyListsAreSorted) {
  BinaryRelation r = testutil::RandomRelation(60, 60, 500, 1.0, 5);
  IndexedRelation idx(r);
  for (Value a = 0; a < idx.num_x(); ++a) {
    const auto ys = idx.YsOf(a);
    EXPECT_TRUE(std::is_sorted(ys.begin(), ys.end()));
  }
  for (Value b = 0; b < idx.num_y(); ++b) {
    const auto xs = idx.XsOf(b);
    EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  }
}

TEST(SemijoinReduce, DropsDanglingTuples) {
  BinaryRelation r, s;
  r.Add(0, 1);
  r.Add(1, 2);  // y=2 absent from s => dropped from r
  r.Finalize();
  s.Add(7, 1);
  s.Add(8, 9);  // y=9 absent from r => dropped from s
  s.Finalize();
  SemijoinReduce(&r, &s);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(r.tuples()[0], (Tuple{0, 1}));
  EXPECT_EQ(s.tuples()[0], (Tuple{7, 1}));
}

TEST(DegreeCdf, CountsAndWeights) {
  // degrees: 1, 2, 2, 5 with weights 10, 20, 30, 40.
  DegreeCdf cdf({1, 2, 2, 5}, {10, 20, 30, 40});
  EXPECT_EQ(cdf.CountAtMost(0), 0u);
  EXPECT_EQ(cdf.CountAtMost(1), 1u);
  EXPECT_EQ(cdf.CountAtMost(2), 3u);
  EXPECT_EQ(cdf.CountAtMost(4), 3u);
  EXPECT_EQ(cdf.CountAtMost(5), 4u);
  EXPECT_EQ(cdf.CountAtMost(100), 4u);
  EXPECT_DOUBLE_EQ(cdf.WeightAtMost(2), 60.0);
  EXPECT_DOUBLE_EQ(cdf.total_weight(), 100.0);
  EXPECT_EQ(cdf.total_count(), 4u);
}

TEST(DegreeCdf, SkipsZeroDegrees) {
  DegreeCdf cdf({0, 3, 0}, {99, 7, 99});
  EXPECT_EQ(cdf.total_count(), 1u);
  EXPECT_DOUBLE_EQ(cdf.total_weight(), 7.0);
}

TEST(TwoPathStats, FullJoinSizeMatchesBruteForce) {
  BinaryRelation r = testutil::RandomRelation(40, 30, 200, 0.8, 3);
  BinaryRelation s = testutil::RandomRelation(35, 30, 180, 0.8, 4);
  IndexedRelation ri(r), si(s);
  TwoPathStats stats(ri, si);
  uint64_t expected = 0;
  for (const Tuple& rt : r.tuples()) {
    for (const Tuple& st : s.tuples()) {
      if (rt.y == st.y) ++expected;
    }
  }
  EXPECT_EQ(stats.full_join_size(), expected);
}

TEST(TwoPathStats, SumIndexesMatchDirectComputation) {
  BinaryRelation r = testutil::RandomRelation(40, 30, 250, 1.0, 9);
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);  // self join
  for (uint64_t delta : {1ull, 2ull, 4ull, 100ull}) {
    double sum_y = 0;
    for (Value b = 0; b < ri.num_y(); ++b) {
      if (ri.DegY(b) > 0 && ri.DegY(b) <= delta) {
        sum_y += static_cast<double>(ri.DegY(b)) * ri.DegY(b);
      }
    }
    EXPECT_DOUBLE_EQ(stats.SumYAtMost(delta), sum_y) << "delta=" << delta;

    double sum_x = 0;
    for (Value a = 0; a < ri.num_x(); ++a) {
      if (ri.DegX(a) == 0 || ri.DegX(a) > delta) continue;
      for (Value b : ri.YsOf(a)) sum_x += ri.DegY(b);
    }
    EXPECT_DOUBLE_EQ(stats.SumXAtMost(delta), sum_x) << "delta=" << delta;
  }
}

TEST(TwoPathStats, CountIndexes) {
  BinaryRelation r;
  // x=0 has degree 3, x=1 degree 1.
  r.Add(0, 0);
  r.Add(0, 1);
  r.Add(0, 2);
  r.Add(1, 0);
  r.Finalize();
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);
  EXPECT_EQ(stats.CountXAtMost(1), 1u);
  EXPECT_EQ(stats.CountXAtMost(3), 2u);
  EXPECT_EQ(stats.distinct_x(), 2u);
  // y degrees: 2, 1, 1.
  EXPECT_EQ(stats.CountYAtMost(1), 2u);
  EXPECT_EQ(stats.CountYAtMost(2), 3u);
}

TEST(Dictionary, EncodeDecodeLookup) {
  Dictionary d;
  const Value a = d.Encode("alice");
  const Value b = d.Encode("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Encode("alice"), a);
  EXPECT_EQ(d.Lookup("bob"), b);
  EXPECT_EQ(d.Lookup("carol"), kInvalidValue);
  EXPECT_EQ(d.Decode(a), "alice");
  EXPECT_EQ(d.size(), 2u);
}

TEST(Loader, ParsesEdgesSkipsCommentsAndBlanks) {
  const std::string text = "# comment\n1 2\n\n  \n% other comment\n3\t4\n1 2\n";
  std::string error;
  auto rel = ParseEdgeList(text, &error);
  ASSERT_TRUE(rel.has_value()) << error;
  EXPECT_EQ(rel->size(), 2u);  // duplicate 1 2 removed
}

TEST(Loader, RejectsMalformedLine) {
  std::string error;
  EXPECT_FALSE(ParseEdgeList("1 2\nfoo bar\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseEdgeList("1\n", &error).has_value());
  EXPECT_FALSE(ParseEdgeList("1 2 3\n", &error).has_value());
}

TEST(Loader, MissingFileFailsGracefully) {
  std::string error;
  EXPECT_FALSE(LoadEdgeList("/nonexistent/path/edges.txt", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Loader, SaveLoadRoundTrip) {
  BinaryRelation r = testutil::RandomRelation(20, 20, 60, 0.5, 17);
  const std::string path = ::testing::TempDir() + "/jpmm_loader_rt.txt";
  ASSERT_TRUE(SaveEdgeList(r, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->tuples(), r.tuples());
  std::remove(path.c_str());
}

TEST(SetFamily, ElementsAndInvertedLists) {
  BinaryRelation r;
  r.Add(0, 5);
  r.Add(0, 7);
  r.Add(1, 5);
  r.Finalize();
  IndexedRelation idx(r);
  SetFamily fam(idx);
  EXPECT_EQ(fam.SetSize(0), 2u);
  EXPECT_EQ(fam.SetSize(1), 1u);
  EXPECT_EQ(fam.ListSize(5), 2u);
  EXPECT_TRUE(fam.Contains(0, 7));
  EXPECT_FALSE(fam.Contains(1, 7));
  EXPECT_EQ(fam.NonEmptySets(), (std::vector<Value>{0, 1}));
}

TEST(SetFamily, StatsMatchTable2Columns) {
  BinaryRelation r;
  r.Add(0, 0);
  r.Add(0, 1);
  r.Add(0, 2);
  r.Add(2, 1);
  r.Finalize();
  IndexedRelation idx(r);
  SetFamily fam(idx);
  const SetFamilyStats st = fam.Stats();
  EXPECT_EQ(st.num_tuples, 4u);
  EXPECT_EQ(st.num_sets, 2u);
  EXPECT_EQ(st.dom_size, 3u);
  EXPECT_EQ(st.min_set_size, 1u);
  EXPECT_EQ(st.max_set_size, 3u);
  EXPECT_DOUBLE_EQ(st.avg_set_size, 2.0);
  EXPECT_FALSE(st.ToString().empty());
}

TEST(Catalog, PutGetIndexNames) {
  Catalog cat;
  cat.Put("r", SmallRel());
  EXPECT_TRUE(cat.Has("r"));
  EXPECT_FALSE(cat.Has("s"));
  EXPECT_EQ(cat.Get("r").size(), 4u);
  const IndexedRelation& idx = cat.Index("r");
  EXPECT_EQ(idx.num_tuples(), 4u);
  // Memoized: same object on second call.
  EXPECT_EQ(&cat.Index("r"), &idx);
  cat.Put("s", SmallRel());
  EXPECT_EQ(cat.Names(), (std::vector<std::string>{"r", "s"}));
}

TEST(Catalog, DropUnregistersAndBumpsVersion) {
  Catalog cat;
  EXPECT_FALSE(cat.Drop("r")) << "dropping a missing name is reported";
  const uint64_t v0 = cat.version();
  cat.Put("r", SmallRel());
  EXPECT_GT(cat.version(), v0);
  const uint64_t v1 = cat.version();
  EXPECT_TRUE(cat.Drop("r"));
  EXPECT_GT(cat.version(), v1);
  EXPECT_FALSE(cat.Has("r"));
  EXPECT_EQ(cat.IndexSnapshot("r"), nullptr);
}

TEST(Catalog, IndexSnapshotPinsEntryAcrossPutAndDrop) {
  Catalog cat;
  cat.Put("r", SmallRel());
  auto snap = cat.IndexSnapshot("r");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_tuples(), 4u);

  // Replace with a different relation: the old snapshot is untouched, a
  // fresh snapshot sees the new data (copy-on-write, not in-place).
  BinaryRelation bigger;
  for (Value i = 0; i < 10; ++i) bigger.Add(i, i % 3);
  cat.Put("r", std::move(bigger));
  EXPECT_EQ(snap->num_tuples(), 4u);
  auto snap2 = cat.IndexSnapshot("r");
  ASSERT_NE(snap2, nullptr);
  EXPECT_EQ(snap2->num_tuples(), 10u);
  EXPECT_NE(snap.get(), snap2.get());

  // Drop: both snapshots stay alive and readable.
  EXPECT_TRUE(cat.Drop("r"));
  EXPECT_EQ(snap->num_tuples(), 4u);
  EXPECT_EQ(snap2->num_tuples(), 10u);
}

TEST(Catalog, PutFinalizesUnfinalized) {
  Catalog cat;
  BinaryRelation raw;
  raw.Add(1, 1);
  raw.Add(1, 1);
  cat.Put("raw", std::move(raw));
  EXPECT_EQ(cat.Get("raw").size(), 1u);
  EXPECT_TRUE(cat.Get("raw").finalized());
}

}  // namespace
}  // namespace jpmm
