// Concurrent multi-client QueryEngine: N threads hammer ONE engine with
// mixed Prepare / Execute / AddRelation / DropRelation while using limit,
// page, ordered, and materializing sinks — and every client's result must
// equal the single-threaded oracle. This binary is part of the CI
// ThreadSanitizer matrix; keep new cross-thread engine state covered here.
//
// Threading discipline for the assertions: worker threads record failures
// into per-thread slots (no gtest macros off the main thread — portable
// and keeps one failure from interleaving output); the main thread
// asserts after join.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/join_project.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::Sorted;

constexpr int kClients = 8;  // acceptance floor: >= 8 mixed-role threads

BinaryRelation SkewedGraph(uint64_t seed = 11) {
  return CommunityGraph(/*communities=*/3, /*community_size=*/40,
                        /*p_in=*/0.4, seed);
}

// Single-threaded reference through the sequential WCOJ baseline.
std::vector<OutPair> Oracle(const BinaryRelation& rel) {
  JoinProjectOptions opts;
  opts.strategy = Strategy::kWcojFull;
  opts.threads = 1;
  opts.sorted = true;
  return JoinProject::TwoPath(rel, rel, opts).pairs;
}

std::vector<CountedPair> OracleCounted(const BinaryRelation& rel) {
  JoinProjectOptions opts;
  opts.strategy = Strategy::kWcojFull;
  opts.threads = 1;
  opts.sorted = true;
  opts.count_witnesses = true;
  return JoinProject::TwoPath(rel, rel, opts).counted;
}

QuerySpec TwoPathSpec(const std::string& name, bool counted = false) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {name};
  spec.count_witnesses = counted;
  return spec;
}

// Per-thread failure slot: empty string = clean.
struct FailureLog {
  explicit FailureLog(size_t threads) : slots(threads) {}
  std::vector<std::string> slots;

  void Record(size_t thread, const std::string& msg) {
    if (slots[thread].empty()) slots[thread] = msg;
  }
  void AssertClean() const {
    for (size_t i = 0; i < slots.size(); ++i) {
      EXPECT_TRUE(slots[i].empty()) << "thread " << i << ": " << slots[i];
    }
  }
};

// ---- Single-flight planning: racing first executions agree on one plan,
// exactly one of them reports the optimizer run.

TEST(QueryEngineConcurrent, FirstExecuteRaceIsSingleFlight) {
  const BinaryRelation rel = SkewedGraph();
  const auto oracle = Oracle(rel);
  QueryEngine engine;
  engine.AddRelation("R", rel);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  FailureLog log(kClients);
  std::vector<ExecStats> stats(kClients);
  std::atomic<int> gate{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      gate.fetch_add(1);
      while (gate.load() < kClients) {
      }  // start together: maximize the planning race
      VectorSink sink;
      QueryStatus st = engine.Execute(q, sink, {}, &stats[c]);
      if (!st.ok()) {
        log.Record(c, st.message());
        return;
      }
      if (Sorted(sink.pairs()) != oracle) {
        log.Record(c, "result mismatch vs oracle");
      }
    });
  }
  for (auto& t : threads) t.join();
  log.AssertClean();

  int misses = 0;
  for (const ExecStats& s : stats) misses += s.plan_cache_hit ? 0 : 1;
  EXPECT_EQ(misses, 1) << "exactly the planning winner reports a miss";
  EXPECT_TRUE(q.has_plan());
  EXPECT_EQ(q.executions(), static_cast<uint64_t>(kClients));
}

// The star "plan" (thresholds sweep) is cached with the same single-flight
// discipline; racing first executions must report exactly one miss too.

TEST(QueryEngineConcurrent, StarFirstExecuteRaceIsSingleFlight) {
  const BinaryRelation rel = UniformBipartite(100, 30, 500, 9);
  QueryEngine engine;
  engine.AddRelation("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(spec, &q).ok());

  FailureLog log(kClients);
  std::vector<ExecStats> stats(kClients);
  std::vector<size_t> sizes(kClients, 0);
  std::atomic<int> gate{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      gate.fetch_add(1);
      while (gate.load() < kClients) {
      }
      VectorSink sink;
      QueryStatus st = engine.Execute(q, sink, {}, &stats[c]);
      if (!st.ok()) {
        log.Record(c, st.message());
        return;
      }
      sizes[c] = sink.tuple_data().size();
    });
  }
  for (auto& t : threads) t.join();
  log.AssertClean();

  int misses = 0;
  for (const ExecStats& s : stats) misses += s.plan_cache_hit ? 0 : 1;
  EXPECT_EQ(misses, 1) << "exactly the thresholds-sweep winner is a miss";
  for (int c = 1; c < kClients; ++c) EXPECT_EQ(sizes[c], sizes[0]);
}

// ---- The acceptance scenario: >= 8 threads, mixed Prepare / Execute /
// AddRelation / DropRelation on one shared engine, every sink family in
// play, every result checked against its single-threaded oracle.

TEST(QueryEngineConcurrent, MixedPrepareExecuteAddDropRelation) {
  const BinaryRelation stable = SkewedGraph(11);
  const BinaryRelation hot = SkewedGraph(23);  // repeatedly re-Put
  const auto oracle = Oracle(stable);
  const auto oracle_counted = OracleCounted(stable);
  const auto hot_oracle = Oracle(hot);
  const std::set<std::pair<Value, Value>> oracle_set = [&] {
    std::set<std::pair<Value, Value>> s;
    for (const OutPair& p : oracle) s.insert({p.x, p.z});
    return s;
  }();

  QueryEngine engine;
  engine.AddRelation("R", stable);
  engine.AddRelation("hot", hot);

  constexpr int kIters = 8;
  constexpr int kWriters = 2;
  constexpr int kReaders = kClients - kWriters;
  FailureLog log(kClients);
  std::vector<std::thread> threads;

  // Readers: Prepare + Execute against "R" with a rotating sink family,
  // interleaved with Prepare + Execute against the hot-swapped relation.
  for (int c = 0; c < kReaders; ++c) {
    threads.emplace_back([&, c] {
      for (int it = 0; it < kIters; ++it) {
        PreparedQuery q;
        const bool counted = (c + it) % 4 == 3;
        QueryStatus st = engine.Prepare(TwoPathSpec("R", counted), &q);
        if (!st.ok()) {
          log.Record(c, "Prepare R: " + st.message());
          return;
        }
        switch ((c + it) % 4) {
          case 0: {  // full materialization == oracle
            VectorSink sink;
            st = engine.Execute(q, sink, {});
            if (!st.ok() || Sorted(sink.pairs()) != oracle) {
              log.Record(c, "VectorSink mismatch: " + st.message());
              return;
            }
            break;
          }
          case 1: {  // limit: exact count, subset of the oracle
            LimitSink sink(17);
            st = engine.Execute(q, sink, {});
            if (!st.ok() ||
                sink.pairs().size() !=
                    std::min<size_t>(17, oracle_set.size())) {
              log.Record(c, "LimitSink count: " + st.message());
              return;
            }
            for (const OutPair& p : sink.pairs()) {
              if (oracle_set.count({p.x, p.z}) == 0) {
                log.Record(c, "LimitSink delivered a non-result");
                return;
              }
            }
            break;
          }
          case 2: {  // page: exact size + exact skip accounting
            PageSink sink(13, 11);
            st = engine.Execute(q, sink, {});
            const size_t expect =
                std::min<size_t>(11, oracle_set.size() -
                                         std::min<size_t>(13,
                                                          oracle_set.size()));
            if (!st.ok() || sink.size() != expect ||
                sink.skipped() !=
                    std::min<uint64_t>(13, oracle_set.size())) {
              log.Record(c, "PageSink accounting: " + st.message());
              return;
            }
            break;
          }
          default: {  // ranked: equals the full-sort oracle prefix
            OrderedBySink sink(ResultOrder::kCountDescending, 20);
            st = engine.Execute(q, sink, {});
            auto expect = oracle_counted;
            std::sort(expect.begin(), expect.end(),
                      [](const CountedPair& a, const CountedPair& b) {
                        if (a.count != b.count) return a.count > b.count;
                        if (a.x != b.x) return a.x < b.x;
                        return a.z < b.z;
                      });
            expect.resize(std::min<size_t>(20, expect.size()));
            if (!st.ok() || sink.ranked() != expect) {
              log.Record(c, "OrderedBySink vs full-sort oracle: " +
                                st.message());
              return;
            }
            break;
          }
        }
        // Snapshot isolation exercise: the hot relation is re-Put
        // concurrently with identical content, so any prepared snapshot
        // must evaluate to the same oracle.
        if (it % 3 == 0) {
          PreparedQuery hq;
          st = engine.Prepare(TwoPathSpec("hot"), &hq);
          if (!st.ok()) {
            log.Record(c, "Prepare hot: " + st.message());
            return;
          }
          VectorSink sink;
          st = engine.Execute(hq, sink, {});
          if (!st.ok() || Sorted(sink.pairs()) != hot_oracle) {
            log.Record(c, "hot-swap snapshot mismatch: " + st.message());
            return;
          }
        }
      }
    });
  }

  // Writers: replace "hot" (same content — readers can then assert exact
  // results), churn scratch names through Add + Drop, and poke the
  // error path for dropping a missing name.
  for (int w = 0; w < kWriters; ++w) {
    const int slot = kReaders + w;
    threads.emplace_back([&, w, slot] {
      for (int it = 0; it < kIters * 2; ++it) {
        if (!engine.AddRelation("hot", hot).ok()) {
          log.Record(slot, "AddRelation hot failed");
          return;
        }
        const std::string scratch =
            "tmp_" + std::to_string(w) + "_" + std::to_string(it);
        engine.AddRelation(scratch, SkewedGraph(100 + it));
        if (!engine.catalog().Has(scratch)) {
          log.Record(slot, "scratch relation vanished before drop");
          return;
        }
        if (!engine.DropRelation(scratch).ok()) {
          log.Record(slot, "DropRelation scratch failed");
          return;
        }
        if (engine.DropRelation("never_registered_" + scratch).ok()) {
          log.Record(slot, "dropping a missing name reported ok");
          return;
        }
      }
    });
  }

  for (auto& t : threads) t.join();
  log.AssertClean();
  EXPECT_TRUE(engine.catalog().Has("R"));
  EXPECT_TRUE(engine.catalog().Has("hot"));
}

// ---- Snapshot isolation, single-threaded and explicit: a PreparedQuery
// keeps evaluating the data it was prepared on across Put and Drop.

TEST(QueryEngineConcurrent, PreparedQuerySurvivesReplaceAndDrop) {
  const BinaryRelation before = SkewedGraph(5);
  const BinaryRelation after = UniformBipartite(80, 30, 400, 7);
  const auto oracle_before = Oracle(before);
  const auto oracle_after = Oracle(after);
  ASSERT_NE(oracle_before, oracle_after) << "test premise";

  QueryEngine engine;
  engine.AddRelation("R", before);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  engine.AddRelation("R", after);  // replace mid-flight
  VectorSink sink;
  ASSERT_TRUE(engine.Execute(q, sink, {}).ok());
  EXPECT_EQ(Sorted(sink.pairs()), oracle_before)
      << "snapshot must keep the pre-replace data";

  PreparedQuery q2;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q2).ok());
  VectorSink sink2;
  ASSERT_TRUE(engine.Execute(q2, sink2, {}).ok());
  EXPECT_EQ(Sorted(sink2.pairs()), oracle_after)
      << "re-Prepare must see the replacement";

  ASSERT_TRUE(engine.DropRelation("R").ok());
  VectorSink sink3;
  ASSERT_TRUE(engine.Execute(q, sink3, {}).ok())
      << "a dropped relation stays alive for prepared queries";
  EXPECT_EQ(Sorted(sink3.pairs()), oracle_before);
  PreparedQuery q3;
  EXPECT_FALSE(engine.Prepare(TwoPathSpec("R"), &q3).ok())
      << "new Prepares must see the drop";
}

// ---- Concurrent executions with different thread counts: the plan
// re-derivation race (plan_threads changes) must stay correct.

TEST(QueryEngineConcurrent, MixedThreadCountExecutions) {
  const BinaryRelation rel = SkewedGraph(31);
  const auto oracle = Oracle(rel);
  QueryEngine engine;
  engine.AddRelation("R", rel);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  FailureLog log(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int it = 0; it < 4; ++it) {
        ExecOptions exec;
        exec.threads = 1 + (c + it) % 2;  // 1 and 2 interleaved
        VectorSink sink;
        QueryStatus st = engine.Execute(q, sink, exec);
        if (!st.ok() || Sorted(sink.pairs()) != oracle) {
          log.Record(c, "mismatch at threads=" +
                            std::to_string(exec.threads) + " " +
                            st.message());
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  log.AssertClean();
  EXPECT_EQ(q.executions(), static_cast<uint64_t>(kClients * 4));
}

}  // namespace
}  // namespace jpmm
