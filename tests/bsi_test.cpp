// BSI tests: the three evaluation strategies agree with direct
// intersection, and the latency model matches §3.3's formulas.

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "bsi/latency_sim.h"
#include "bsi/workload.h"
#include "datagen/generators.h"
#include "join/intersection.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

struct Instance {
  BinaryRelation rel;
  IndexedRelation idx;
  SetFamily fam;
  explicit Instance(BinaryRelation r)
      : rel(std::move(r)), idx(rel), fam(idx) {}
};

Instance MakeFamily(uint32_t sets, uint32_t dom, uint32_t max_size,
                    double skew, uint64_t seed) {
  BipartiteSpec spec;
  spec.num_sets = sets;
  spec.dom_size = dom;
  spec.max_set_size = max_size;
  spec.element_skew = skew;
  spec.seed = seed;
  return Instance(MakeBipartite(spec));
}

std::vector<uint8_t> OracleBsi(const SetFamily& r, const SetFamily& s,
                               std::span<const BsiQuery> batch) {
  std::vector<uint8_t> out(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    out[i] = IntersectsSorted(r.Elements(batch[i].a), s.Elements(batch[i].b))
                 ? 1
                 : 0;
  }
  return out;
}

TEST(BsiWorkload, SamplesNonEmptySets) {
  Instance inst = MakeFamily(50, 40, 6, 0.8, 401);
  auto queries = SampleBsiWorkload(inst.fam, inst.fam, 500, 11);
  EXPECT_EQ(queries.size(), 500u);
  for (const BsiQuery& q : queries) {
    EXPECT_GT(inst.fam.SetSize(q.a), 0u);
    EXPECT_GT(inst.fam.SetSize(q.b), 0u);
  }
}

TEST(BsiWorkload, DeterministicPerSeed) {
  Instance inst = MakeFamily(30, 30, 5, 0.5, 402);
  auto q1 = SampleBsiWorkload(inst.fam, inst.fam, 50, 7);
  auto q2 = SampleBsiWorkload(inst.fam, inst.fam, 50, 7);
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_EQ(q1[i].a, q2[i].a);
    EXPECT_EQ(q1[i].b, q2[i].b);
  }
}

class BsiStrategyTest : public ::testing::TestWithParam<int> {};

TEST_P(BsiStrategyTest, AllStrategiesMatchOracle) {
  const int threads = GetParam();
  Instance inst = MakeFamily(80, 50, 12, 1.0, 403);
  auto batch = SampleBsiWorkload(inst.fam, inst.fam, 300, 13);
  const auto oracle = OracleBsi(inst.fam, inst.fam, batch);
  BsiOptions opts;
  opts.threads = threads;
  EXPECT_EQ(BsiAnswerPerQuery(inst.fam, inst.fam, batch, opts), oracle);
  EXPECT_EQ(BsiAnswerBatchMm(inst.fam, inst.fam, batch, opts), oracle);
  EXPECT_EQ(BsiAnswerBatchNonMm(inst.fam, inst.fam, batch, opts), oracle);
}

INSTANTIATE_TEST_SUITE_P(Threads, BsiStrategyTest, ::testing::Values(1, 2, 4));

TEST(Bsi, CrossFamilyQueries) {
  Instance r = MakeFamily(40, 30, 8, 0.7, 404);
  Instance s = MakeFamily(35, 30, 8, 0.7, 405);
  auto batch = SampleBsiWorkload(r.fam, s.fam, 200, 17);
  const auto oracle = OracleBsi(r.fam, s.fam, batch);
  EXPECT_EQ(BsiAnswerBatchMm(r.fam, s.fam, batch), oracle);
  EXPECT_EQ(BsiAnswerBatchNonMm(r.fam, s.fam, batch), oracle);
}

TEST(Bsi, DuplicateQueriesInBatch) {
  Instance inst = MakeFamily(20, 20, 5, 0.5, 406);
  std::vector<BsiQuery> batch(10, BsiQuery{0, 1});
  const auto oracle = OracleBsi(inst.fam, inst.fam, batch);
  EXPECT_EQ(BsiAnswerBatchMm(inst.fam, inst.fam, batch), oracle);
}

TEST(Bsi, BatchOfOne) {
  Instance inst = MakeFamily(20, 20, 5, 0.5, 407);
  std::vector<BsiQuery> batch = {BsiQuery{3, 7}};
  const auto oracle = OracleBsi(inst.fam, inst.fam, batch);
  EXPECT_EQ(BsiAnswerBatchMm(inst.fam, inst.fam, batch), oracle);
  EXPECT_EQ(BsiAnswerPerQuery(inst.fam, inst.fam, batch), oracle);
}

TEST(LatencyModel, MatchesSection33Formulas) {
  // B = 1000 q/s, C = 500, t(C) = 0.25 s:
  // fill = 0.5 s, avg delay = 0.25 + 0.25 = 0.5 s, machines = ceil(0.5) = 1.
  const BsiLatencyEstimate e = EstimateBsiLatency(1000.0, 500, 0.25);
  EXPECT_DOUBLE_EQ(e.fill_seconds, 0.5);
  EXPECT_DOUBLE_EQ(e.avg_delay_seconds, 0.5);
  EXPECT_DOUBLE_EQ(e.machines, 1.0);
}

TEST(LatencyModel, SlowBatchesNeedMoreMachines) {
  // t(C) = 2 s for C = 500 at B = 1000: 4 machines to keep up.
  const BsiLatencyEstimate e = EstimateBsiLatency(1000.0, 500, 2.0);
  EXPECT_DOUBLE_EQ(e.machines, 4.0);
  EXPECT_DOUBLE_EQ(e.avg_delay_seconds, 0.25 + 2.0);
}

TEST(LatencyModel, BiggerBatchesAmortize) {
  // Fixed per-batch time: larger batches need fewer machines but wait
  // longer to fill.
  const auto small = EstimateBsiLatency(1000.0, 100, 0.5);
  const auto large = EstimateBsiLatency(1000.0, 1000, 0.5);
  EXPECT_GT(small.machines, large.machines);
  EXPECT_LT(small.fill_seconds, large.fill_seconds);
}

}  // namespace
}  // namespace jpmm
