// Property tests for the sparse heavy-part subsystem: CSR kernels against
// the dense and naive oracles across shapes and densities, the per-block
// dense/CSR dispatch, and forced-path equivalence of the heavy execution
// paths (mm_join, star_join, triangle) on skewed data.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/heavy_dispatch.h"
#include "core/join_project.h"
#include "core/mm_join.h"
#include "core/star_join.h"
#include "core/triangle.h"
#include "datagen/generators.h"
#include "matrix/calibration.h"
#include "matrix/cost_model.h"
#include "matrix/matmul.h"
#include "matrix/random.h"
#include "matrix/sparse_matrix.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::RandomRelation;
using testutil::Sorted;

// ---- CSR representation --------------------------------------------------

TEST(CsrMatrix, RoundTripsThroughDense) {
  for (double density : {0.0, 0.02, 0.3, 1.0}) {
    const Matrix d = RandomDenseMatrix(37, 53, density, 7);
    const CsrMatrix m = CsrMatrix::FromDense(d);
    EXPECT_EQ(m.rows(), d.rows());
    EXPECT_EQ(m.cols(), d.cols());
    EXPECT_EQ(m.ToDense(), d) << "density=" << density;
  }
}

TEST(CsrMatrix, FromRowsMatchesSequentialBuild) {
  const Matrix d = RandomDenseMatrix(64, 40, 0.1, 11);
  const CsrMatrix seq = CsrMatrix::FromDense(d);
  for (int threads : {1, 3}) {
    const CsrMatrix par = CsrMatrix::FromRows(
        64, 40, threads, [&](size_t i, std::vector<uint32_t>* out) {
          const auto row = d.Row(i);
          for (size_t j = 0; j < row.size(); ++j) {
            if (row[j] > 0.5f) out->push_back(static_cast<uint32_t>(j));
          }
        });
    EXPECT_EQ(par.nnz(), seq.nnz());
    EXPECT_EQ(par.ToDense(), d);
  }
}

TEST(CsrMatrix, FromEntriesHandlesArbitraryOrderAndTranspose) {
  std::vector<std::pair<Value, Value>> entries = {
      {2, 1}, {0, 3}, {2, 0}, {1, 2}, {0, 0}};
  const CsrMatrix m = CsrMatrix::FromEntries(3, 4, entries);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_TRUE(m.ToDense().At(0, 3) > 0.5f);
  EXPECT_TRUE(m.ToDense().At(2, 0) > 0.5f);
  const CsrMatrix mt = CsrMatrix::FromEntries(4, 3, entries, /*swapped=*/true);
  EXPECT_EQ(mt.ToDense(), m.ToDense().Transposed());
}

TEST(CsrMatrix, EmptyRowsAndDegenerateShapes) {
  CsrMatrix m(5);
  m.FinishRow();  // empty row 0
  m.PushCol(4);
  m.FinishRow();
  m.FinishRow();  // empty row 2
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.Row(0).size(), 0u);
  EXPECT_EQ(m.Row(2).size(), 0u);
  EXPECT_EQ(m.RowRangeNnz(0, 3), 1u);

  const CsrMatrix zero = CsrMatrix::FromDense(Matrix(0, 7));
  EXPECT_EQ(zero.rows(), 0u);
  EXPECT_EQ(zero.Density(), 0.0);
}

// ---- Kernels vs oracles --------------------------------------------------

// CSR products must be bit-identical to the dense blocked kernel and the
// naive triple loop on 0/1 operands (integer counts below 2^24 are exactly
// representable, so every correct implementation produces the same bits).
TEST(SparseKernels, MatchDenseAndNaiveOraclesAcrossShapesAndDensities) {
  Rng rng(99);
  const std::vector<size_t> dims = {1, 2, 3, 17, 33, 65, 100};
  for (double density : {0.001, 0.05, 0.4, 1.0}) {
    for (int trial = 0; trial < 6; ++trial) {
      const size_t u = dims[rng.NextBounded(dims.size())];
      const size_t v = dims[rng.NextBounded(dims.size())];
      const size_t w = dims[rng.NextBounded(dims.size())];
      const Matrix ad = RandomDenseMatrix(u, v, density, 1000 + trial);
      const Matrix bd = RandomDenseMatrix(v, w, density, 2000 + trial);
      const CsrMatrix a = CsrMatrix::FromDense(ad);
      const CsrMatrix b = CsrMatrix::FromDense(bd);
      const Matrix want = MultiplyNaive(ad, bd);
      ASSERT_EQ(Multiply(ad, bd, 1), want);  // dense oracle agreement
      EXPECT_EQ(CsrDenseProduct(a, bd, 1), want)
          << "u=" << u << " v=" << v << " w=" << w << " d=" << density;
      EXPECT_EQ(CsrCsrProduct(a, b, 1), want)
          << "u=" << u << " v=" << v << " w=" << w << " d=" << density;
      EXPECT_EQ(CsrProductReference(a, bd), want);
    }
  }
}

TEST(SparseKernels, ParallelRowBandsAreBitIdentical) {
  const Matrix ad = RandomDenseMatrix(301, 143, 0.03, 5);
  const Matrix bd = RandomDenseMatrix(143, 257, 0.03, 6);
  const CsrMatrix a = CsrMatrix::FromDense(ad);
  const CsrMatrix b = CsrMatrix::FromDense(bd);
  const Matrix ref = CsrDenseProduct(a, bd, 1);
  const Matrix ref2 = CsrCsrProduct(a, b, 1);
  for (int threads : {2, 3, HardwareThreads()}) {
    EXPECT_EQ(CsrDenseProduct(a, bd, threads), ref) << threads;
    EXPECT_EQ(CsrCsrProduct(a, b, threads), ref2) << threads;
  }
}

TEST(SparseKernels, RowRangeBlocksComposeToFullProduct) {
  const Matrix ad = RandomDenseMatrix(97, 61, 0.08, 8);
  const Matrix bd = RandomDenseMatrix(61, 45, 0.08, 9);
  const CsrMatrix a = CsrMatrix::FromDense(ad);
  const CsrMatrix b = CsrMatrix::FromDense(bd);
  const Matrix want = MultiplyNaive(ad, bd);
  CsrScratch scratch;
  SparseRowBlock blk;
  for (size_t r0 = 0; r0 < a.rows(); r0 += 13) {
    const size_t r1 = std::min(a.rows(), r0 + 13);
    std::vector<float> out((r1 - r0) * bd.cols());
    CsrDenseRowRange(a, bd, r0, r1, out);
    for (size_t i = r0; i < r1; ++i) {
      for (size_t j = 0; j < bd.cols(); ++j) {
        ASSERT_EQ(out[(i - r0) * bd.cols() + j], want.At(i, j));
      }
    }
    CsrCsrRowRange(a, b, r0, r1, &scratch, &blk);
    for (size_t i = r0; i < r1; ++i) {
      const auto cols = blk.RowCols(i - r0);
      const auto counts = blk.RowCounts(i - r0);
      ASSERT_TRUE(std::is_sorted(cols.begin(), cols.end()));
      std::vector<float> row(bd.cols(), 0.0f);
      for (size_t e = 0; e < cols.size(); ++e) {
        row[cols[e]] = static_cast<float>(counts[e]);
      }
      for (size_t j = 0; j < bd.cols(); ++j) {
        ASSERT_EQ(row[j], want.At(i, j));
      }
    }
  }
}

TEST(SparseKernels, ExpandOpsCountsExactly) {
  const CsrMatrix a =
      CsrMatrix::FromDense(RandomDenseMatrix(20, 30, 0.2, 13));
  const CsrMatrix b =
      CsrMatrix::FromDense(RandomDenseMatrix(30, 25, 0.2, 14));
  double want = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (uint32_t k : a.Row(i)) want += static_cast<double>(b.Row(k).size());
  }
  EXPECT_EQ(CsrCsrExpandOps(a, b, 0, a.rows()), want);
  EXPECT_EQ(CsrCsrExpandOps(a, b, 0, 0), 0.0);
}

// ---- Dispatch ------------------------------------------------------------

TEST(HeavyDispatch, ForcedModesPinEveryBlock) {
  const CsrMatrix a =
      CsrMatrix::FromDense(RandomDenseMatrix(600, 64, 0.1, 21));
  const CsrMatrix b =
      CsrMatrix::FromDense(RandomDenseMatrix(64, 80, 0.1, 22));
  const SparseKernelRates rates = SparseKernelRates::FromRates(1e9, 1e9, 1e10);
  for (auto [mode, kernel] :
       {std::pair{HeavyPathMode::kForceDense, ProductKernel::kDenseGemm},
        std::pair{HeavyPathMode::kForceCsrDense, ProductKernel::kCsrDense},
        std::pair{HeavyPathMode::kForceCsrCsr, ProductKernel::kCsrCsr}}) {
    HeavyKernelCounts counts;
    const auto choices =
        PlanProductBlocks(a, b, 256, mode, &rates, true, true, &counts);
    ASSERT_EQ(choices.size(), 3u);
    EXPECT_EQ(counts.total(), 3u);
    for (const auto& c : choices) EXPECT_EQ(c.kernel, kernel);
  }
}

TEST(HeavyDispatch, DensityDrivesKernelChoice) {
  // Synthetic rates where dense flops are 100x the sparse op rate: dense
  // should win at density 1 and CSR at density 1e-4, regardless of machine.
  const SparseKernelRates rates = SparseKernelRates::FromRates(1e9, 1e9, 1e11);
  const uint64_t n = 4096;
  const ProductKernel sparse_pick = ChooseProductKernel(
      n, n, n, /*block_nnz=*/n, /*expand_ops=*/1.0, rates, true, true);
  EXPECT_NE(sparse_pick, ProductKernel::kDenseGemm);
  const ProductKernel dense_pick = ChooseProductKernel(
      n, n, n, /*block_nnz=*/n * n,
      /*expand_ops=*/static_cast<double>(n) * n * n, rates, true, true);
  EXPECT_EQ(dense_pick, ProductKernel::kDenseGemm);
  // Gating: with dense disallowed the dense-regime block degrades to a CSR
  // kernel instead.
  EXPECT_NE(ChooseProductKernel(n, n, n, n * n,
                                static_cast<double>(n) * n * n, rates, false,
                                true),
            ProductKernel::kDenseGemm);
}

// ---- mm_join forced-path equivalence + dispatch ---------------------------

TEST(SparseMmJoin, AllHeavyPathsProduceIdenticalSortedOutput) {
  const BinaryRelation rel = RandomRelation(120, 60, 1400, 1.3, 77);
  IndexedRelation ri(rel);
  MmJoinOptions base;
  base.thresholds = {2, 2};
  base.heavy_path = HeavyPathMode::kForceDense;
  const auto ref = Sorted(MmJoinTwoPath(ri, ri, base).pairs);
  ASSERT_FALSE(ref.empty());
  for (HeavyPathMode mode :
       {HeavyPathMode::kForceCsrDense, HeavyPathMode::kForceCsrCsr,
        HeavyPathMode::kAuto}) {
    MmJoinOptions opts = base;
    opts.heavy_path = mode;
    EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, opts).pairs), ref)
        << HeavyPathModeName(mode);
  }
  // Counted variant: the CSR x CSR uint32 counts must agree with the float
  // read-back of the dense paths.
  base.count_witnesses = true;
  const auto cref = Sorted(MmJoinTwoPath(ri, ri, base).counted);
  for (HeavyPathMode mode :
       {HeavyPathMode::kForceCsrDense, HeavyPathMode::kForceCsrCsr}) {
    MmJoinOptions opts = base;
    opts.heavy_path = mode;
    EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, opts).counted), cref)
        << HeavyPathModeName(mode);
  }
}

TEST(SparseMmJoin, ThreadCountDoesNotChangeSortedOutputOnSparsePaths) {
  const BinaryRelation rel = RandomRelation(150, 80, 2000, 1.4, 78);
  IndexedRelation ri(rel);
  for (HeavyPathMode mode :
       {HeavyPathMode::kForceCsrDense, HeavyPathMode::kForceCsrCsr,
        HeavyPathMode::kAuto}) {
    MmJoinOptions opts;
    opts.thresholds = {2, 3};
    opts.heavy_path = mode;
    opts.threads = 1;
    const auto ref = Sorted(MmJoinTwoPath(ri, ri, opts).pairs);
    for (int threads : {3, HardwareThreads()}) {
      opts.threads = threads;
      EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, opts).pairs), ref)
          << HeavyPathModeName(mode) << " threads=" << threads;
    }
  }
}

TEST(SparseMmJoin, SortDedupMatchesStampDedupOnSparseRows) {
  const BinaryRelation rel = RandomRelation(90, 45, 900, 1.2, 79);
  IndexedRelation ri(rel);
  MmJoinOptions stamp;
  stamp.thresholds = {2, 2};
  stamp.heavy_path = HeavyPathMode::kForceCsrCsr;
  stamp.count_witnesses = true;
  MmJoinOptions sortd = stamp;
  sortd.dedup = DedupImpl::kSortLocal;
  EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, stamp).counted),
            Sorted(MmJoinTwoPath(ri, ri, sortd).counted));
}

TEST(SparseMmJoin, UltraSparseHeavyPartSelectsCsrKernels) {
  // ~7e-4 density heavy part: every block must dodge the dense GEMM on any
  // machine (the modeled gap is >100x).
  BinaryRelation rel;
  Rng rng(80);
  for (int i = 0; i < 6000; ++i) {
    rel.Add(rng.NextBounded(3000), rng.NextBounded(3000));
  }
  rel.Finalize();
  IndexedRelation ri(rel);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};  // force everything heavy
  auto res = MmJoinTwoPath(ri, ri, opts);
  ASSERT_GT(res.kernel_counts.total(), 0u);
  EXPECT_EQ(res.kernel_counts.dense, 0u)
      << "dense GEMM chosen at density " << res.heavy_density;
  EXPECT_LT(res.heavy_density, 0.01);
  EXPECT_EQ(res.block_choices.size(), res.kernel_counts.total());
  EXPECT_EQ(Sorted(res.pairs), testutil::OracleTwoPath(rel, rel));
}

TEST(SparseMmJoin, MemoryCapPrefersCsrOverThresholdDoubling) {
  // Dense operands would need ~2 * 1500^2 * 4B = 18 MB; the CSR floor is
  // ~100 KB. With a 4 MB cap the old accounting doubled thresholds away;
  // the sparse path must keep them and still be exact.
  BinaryRelation rel;
  Rng rng(81);
  for (int i = 0; i < 4000; ++i) {
    rel.Add(rng.NextBounded(1500), rng.NextBounded(1500));
  }
  rel.Finalize();
  IndexedRelation ri(rel);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.max_matrix_bytes = 4u << 20;
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_EQ(res.adjusted_thresholds.delta1, 1u);
  EXPECT_EQ(res.kernel_counts.dense, 0u);
  EXPECT_EQ(Sorted(res.pairs), testutil::OracleTwoPath(rel, rel));
}

// ---- star + triangle forced-path equivalence ------------------------------

TEST(SparseStarJoin, AllHeavyPathsProduceIdenticalOutput) {
  const BinaryRelation rel = RandomRelation(60, 25, 600, 1.2, 82);
  IndexedRelation ri(rel);
  std::vector<const IndexedRelation*> rels(3, &ri);
  StarJoinOptions base;
  base.thresholds = {2, 2};
  base.heavy_path = HeavyPathMode::kForceDense;
  const auto ref = testutil::ToVectors(MmStarJoin(rels, base).tuples);
  ASSERT_FALSE(ref.empty());
  for (HeavyPathMode mode :
       {HeavyPathMode::kForceCsrDense, HeavyPathMode::kForceCsrCsr,
        HeavyPathMode::kAuto}) {
    StarJoinOptions opts = base;
    opts.heavy_path = mode;
    for (int threads : {1, 3}) {
      opts.threads = threads;
      EXPECT_EQ(testutil::ToVectors(MmStarJoin(rels, opts).tuples), ref)
          << HeavyPathModeName(mode) << " threads=" << threads;
    }
  }
}

TEST(SparseTriangle, AllHeavyPathsMatchNodeIterator) {
  // CountTrianglesMm requires a symmetric relation; CommunityGraph samples
  // each direction independently, so mirror every edge.
  const BinaryRelation community = CommunityGraph(3, 60, 0.3, 83);
  BinaryRelation graph;
  for (const Tuple& t : community.tuples()) {
    graph.Add(t.x, t.y);
    graph.Add(t.y, t.x);
  }
  graph.Finalize();
  IndexedRelation gi(graph);
  const uint64_t want = CountTrianglesNodeIterator(gi);
  for (HeavyPathMode mode :
       {HeavyPathMode::kForceDense, HeavyPathMode::kForceCsrDense,
        HeavyPathMode::kForceCsrCsr, HeavyPathMode::kAuto}) {
    for (int threads : {1, 3}) {
      TriangleCountOptions opts;
      opts.delta = 5;  // plenty of heavy vertices
      opts.threads = threads;
      opts.heavy_path = mode;
      const auto res = CountTrianglesMm(gi, opts);
      EXPECT_EQ(res.triangles, want)
          << HeavyPathModeName(mode) << " threads=" << threads;
      EXPECT_GT(res.kernel_counts.total(), 0u);
    }
  }
}

// ---- calibration ----------------------------------------------------------

TEST(SparseKernelRates, MeasureProducesFiniteOrderedAnchors) {
  const SparseKernelRates rates = SparseKernelRates::Measure(128, {0.01, 0.2});
  ASSERT_EQ(rates.anchors.size(), 2u);
  for (const auto& a : rates.anchors) {
    EXPECT_GT(a.csr_dense_ops_per_sec, 0.0);
    EXPECT_GT(a.csr_csr_ops_per_sec, 0.0);
  }
  EXPECT_GT(rates.dense_flops_per_sec, 0.0);
  // Interpolation stays within the anchor envelope.
  const double lo = std::min(rates.anchors[0].csr_dense_ops_per_sec,
                             rates.anchors[1].csr_dense_ops_per_sec);
  const double hi = std::max(rates.anchors[0].csr_dense_ops_per_sec,
                             rates.anchors[1].csr_dense_ops_per_sec);
  const double mid = rates.CsrDenseRate(0.05);
  EXPECT_GE(mid, lo);
  EXPECT_LE(mid, hi);
  EXPECT_EQ(rates.CsrDenseRate(1e-9),
            rates.anchors[0].csr_dense_ops_per_sec);
  EXPECT_EQ(rates.CsrDenseRate(1.0),
            rates.anchors[1].csr_dense_ops_per_sec);
}

TEST(SparseCostModel, OpsFormulas) {
  EXPECT_EQ(SparseProductOps(0, 10, 5), 50.0);       // zeroing only
  EXPECT_EQ(SparseProductOps(100, 10, 5), 550.0);    // + nnz * w
  EXPECT_EQ(SparseProductOps(7, 3, 0), 0.0);
  EXPECT_DOUBLE_EQ(SparseProductSeconds(1e6, 1e9), 1e-3);
}

}  // namespace
}  // namespace jpmm
