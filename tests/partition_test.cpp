// Tests for degree partitioning (Algorithm 1's R-/R+/S-/S+ split).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/partition.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::RandomRelation;

TEST(Partition, SubrelationsFormAPartition) {
  BinaryRelation r = RandomRelation(40, 30, 300, 1.2, 21);
  BinaryRelation s = RandomRelation(35, 30, 280, 1.2, 22);
  IndexedRelation ri(r), si(s);
  for (uint64_t d1 : {1ull, 2ull, 5ull}) {
    for (uint64_t d2 : {1ull, 3ull, 8ull}) {
      TwoPathPartition part(ri, si, Thresholds{d1, d2});
      BinaryRelation rm = part.RMinus(), rp = part.RPlus();
      EXPECT_EQ(rm.size() + rp.size(), r.size());
      // Disjoint: no tuple in both.
      for (const Tuple& t : rp.tuples()) {
        EXPECT_FALSE(std::binary_search(rm.tuples().begin(),
                                        rm.tuples().end(), t));
      }
      BinaryRelation sm = part.SMinus(), sp = part.SPlus();
      EXPECT_EQ(sm.size() + sp.size(), s.size());
    }
  }
}

TEST(Partition, RPlusTuplesAreHeavyBothSides) {
  BinaryRelation r = RandomRelation(30, 20, 250, 1.0, 23);
  IndexedRelation ri(r);
  const Thresholds t{2, 3};
  TwoPathPartition part(ri, ri, t);
  const BinaryRelation rplus = part.RPlus();
  for (const Tuple& tp : rplus.tuples()) {
    EXPECT_GT(ri.DegX(tp.x), t.delta2);
    EXPECT_GT(ri.DegY(tp.y), t.delta1);
  }
  const BinaryRelation rminus = part.RMinus();
  for (const Tuple& tm : rminus.tuples()) {
    EXPECT_TRUE(ri.DegX(tm.x) <= t.delta2 || ri.DegY(tm.y) <= t.delta1);
  }
}

TEST(Partition, LightnessOraclesMatchDegrees) {
  BinaryRelation r = RandomRelation(25, 25, 200, 1.5, 24);
  IndexedRelation ri(r);
  const Thresholds t{3, 4};
  TwoPathPartition part(ri, ri, t);
  for (Value a = 0; a < ri.num_x(); ++a) {
    EXPECT_EQ(part.XLight(a), ri.DegX(a) <= t.delta2);
    EXPECT_EQ(part.ZLight(a), ri.DegX(a) <= t.delta2);
  }
  for (Value b = 0; b < ri.num_y(); ++b) {
    EXPECT_EQ(part.YLight(b), ri.DegY(b) <= t.delta1);
  }
}

TEST(Partition, HeavyIdsAreDenseAndAscending) {
  BinaryRelation r = RandomRelation(50, 40, 500, 1.2, 25);
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{2, 2});
  const auto& hx = part.heavy_x();
  EXPECT_TRUE(std::is_sorted(hx.begin(), hx.end()));
  for (size_t i = 0; i < hx.size(); ++i) {
    EXPECT_EQ(part.HeavyXId(hx[i]), static_cast<Value>(i));
  }
  // Non-heavy values map to invalid.
  for (Value a = 0; a < ri.num_x(); ++a) {
    if (!std::binary_search(hx.begin(), hx.end(), a)) {
      EXPECT_EQ(part.HeavyXId(a), kInvalidValue);
    }
  }
}

TEST(Partition, HeavyValuesExceedThresholds) {
  BinaryRelation r = RandomRelation(50, 40, 500, 1.2, 26);
  IndexedRelation ri(r);
  const Thresholds t{2, 3};
  TwoPathPartition part(ri, ri, t);
  for (Value a : part.heavy_x()) EXPECT_GT(ri.DegX(a), t.delta2);
  for (Value b : part.heavy_y()) EXPECT_GT(ri.DegY(b), t.delta1);
  for (Value c : part.heavy_z()) EXPECT_GT(ri.DegX(c), t.delta2);
}

TEST(Partition, HugeThresholdsMakeEverythingLight) {
  BinaryRelation r = RandomRelation(30, 30, 300, 1.0, 27);
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{1000, 1000});
  EXPECT_TRUE(part.heavy_x().empty());
  EXPECT_TRUE(part.heavy_y().empty());
  EXPECT_TRUE(part.heavy_z().empty());
  EXPECT_EQ(part.RPlus().size(), 0u);
  EXPECT_EQ(part.RMinus().size(), r.size());
}

TEST(Partition, ThresholdOneMaximizesHeavyPart) {
  // A star: one hub x connected to many ys that each connect back.
  BinaryRelation r;
  for (Value b = 0; b < 10; ++b) {
    r.Add(0, b);             // hub x=0, degree 10
    r.Add(b + 1, b);         // pendant xs, degree 1
    r.Add(b + 1, (b + 1) % 10);
  }
  r.Finalize();
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{1, 1});
  // Hub is heavy (degree 10 > 1), y values have degree 3 > 1.
  EXPECT_NE(part.HeavyXId(0), kInvalidValue);
  EXPECT_FALSE(part.heavy_y().empty());
}

TEST(Partition, EmptyRelations) {
  BinaryRelation r;
  r.Finalize();
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{1, 1});
  EXPECT_TRUE(part.heavy_x().empty());
  EXPECT_TRUE(part.heavy_y().empty());
}

}  // namespace
}  // namespace jpmm
