// Tests for the synthetic dataset generators and Table-2 presets.

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "datagen/presets.h"
#include "storage/set_family.h"

namespace jpmm {
namespace {

TEST(Generators, BipartiteRespectsSpecBounds) {
  BipartiteSpec spec;
  spec.num_sets = 200;
  spec.dom_size = 100;
  spec.min_set_size = 2;
  spec.max_set_size = 10;
  spec.size_skew = 1.0;
  spec.element_skew = 0.8;
  BinaryRelation rel = MakeBipartite(spec);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  const SetFamilyStats st = fam.Stats();
  EXPECT_EQ(st.num_sets, 200u);
  EXPECT_GE(st.min_set_size, 2u);
  EXPECT_LE(st.max_set_size, 10u);
  EXPECT_LE(st.dom_size, 100u);
}

TEST(Generators, DensePathProducesLargeSets) {
  BipartiteSpec spec;
  spec.num_sets = 20;
  spec.dom_size = 50;
  spec.min_set_size = 30;  // > dom/3: exercises the Fisher-Yates path
  spec.max_set_size = 40;
  spec.size_skew = 0.0;
  BinaryRelation rel = MakeBipartite(spec);
  IndexedRelation idx(rel);
  for (Value s = 0; s < 20; ++s) {
    EXPECT_GE(idx.DegX(s), 30u);
    EXPECT_LE(idx.DegX(s), 40u);
    // No duplicate elements within a set (CSR lists are strictly sorted).
    const auto ys = idx.YsOf(s);
    for (size_t i = 1; i < ys.size(); ++i) EXPECT_LT(ys[i - 1], ys[i]);
  }
}

TEST(Generators, DeterministicForSeed) {
  BipartiteSpec spec;
  spec.num_sets = 50;
  spec.dom_size = 60;
  spec.max_set_size = 8;
  spec.seed = 99;
  BinaryRelation a = MakeBipartite(spec);
  BinaryRelation b = MakeBipartite(spec);
  EXPECT_EQ(a.tuples(), b.tuples());
  spec.seed = 100;
  BinaryRelation c = MakeBipartite(spec);
  EXPECT_NE(a.tuples(), c.tuples());
}

TEST(Generators, ElementSkewCreatesHubs) {
  BipartiteSpec skewed;
  skewed.num_sets = 400;
  skewed.dom_size = 400;
  skewed.max_set_size = 6;
  skewed.element_skew = 1.2;
  skewed.seed = 7;
  BipartiteSpec uniform = skewed;
  uniform.element_skew = 0.0;
  IndexedRelation si(MakeBipartite(skewed));
  IndexedRelation ui(MakeBipartite(uniform));
  uint32_t max_s = 0, max_u = 0;
  for (Value e = 0; e < si.num_y(); ++e) max_s = std::max(max_s, si.DegY(e));
  for (Value e = 0; e < ui.num_y(); ++e) max_u = std::max(max_u, ui.DegY(e));
  EXPECT_GT(max_s, 2 * max_u);
}

TEST(Generators, CommunityGraphStructure) {
  BinaryRelation g = CommunityGraph(3, 10, 1.0, 1);
  // Full cliques minus self-loops.
  EXPECT_EQ(g.size(), 3u * 10 * 9);
  IndexedRelation gi(g);
  // No cross-community edge: x in community c only sees y in community c.
  for (const Tuple& t : g.tuples()) {
    EXPECT_EQ(t.x / 10, t.y / 10);
  }
  // p_in = 0 gives an empty graph.
  EXPECT_TRUE(CommunityGraph(3, 10, 0.0, 1).empty());
}

TEST(Generators, UniformBipartiteDomains) {
  BinaryRelation r = UniformBipartite(40, 30, 500, 3);
  EXPECT_LE(r.num_x(), 40u);
  EXPECT_LE(r.num_y(), 30u);
  EXPECT_LE(r.size(), 500u);
  EXPECT_GT(r.size(), 300u);  // few collisions expected
}

TEST(Presets, AllSixGenerateAndMatchRegime) {
  for (DatasetPreset p : AllPresets()) {
    BinaryRelation rel = MakePreset(p, 0.5);
    ASSERT_GT(rel.size(), 0u) << PresetName(p);
    IndexedRelation idx(rel);
    SetFamily fam(idx);
    const SetFamilyStats st = fam.Stats();
    EXPECT_GT(st.num_sets, 0u) << PresetName(p);
    // Dense presets have avg set size a significant fraction of dom.
    const double density = st.avg_set_size / static_cast<double>(st.dom_size);
    switch (p) {
      case DatasetPreset::kJokes:
      case DatasetPreset::kProtein:
      case DatasetPreset::kImage:
        EXPECT_GT(density, 0.05) << PresetName(p);
        break;
      case DatasetPreset::kDblp:
      case DatasetPreset::kRoadNet:
        EXPECT_LT(density, 0.01) << PresetName(p);
        break;
      case DatasetPreset::kWords:
        EXPECT_LT(density, 0.1) << PresetName(p);
        break;
    }
  }
}

TEST(Generators, SubsetFractionCreatesContainments) {
  BipartiteSpec spec;
  spec.num_sets = 120;
  spec.dom_size = 100;
  spec.min_set_size = 4;
  spec.max_set_size = 20;
  spec.subset_fraction = 0.4;
  spec.seed = 55;
  BinaryRelation rel = MakeBipartite(spec);
  IndexedRelation idx(rel);
  // Count (sub, super) pairs by brute force: with 40% subset sets there
  // must be plenty.
  size_t containments = 0;
  for (Value a = 0; a < idx.num_x(); ++a) {
    const auto ea = idx.YsOf(a);
    if (ea.empty()) continue;
    for (Value b = 0; b < idx.num_x(); ++b) {
      if (a == b || idx.DegX(b) < ea.size()) continue;
      const auto eb = idx.YsOf(b);
      if (std::includes(eb.begin(), eb.end(), ea.begin(), ea.end())) {
        ++containments;
      }
    }
  }
  EXPECT_GT(containments, 20u);

  BipartiteSpec no_subsets = spec;
  no_subsets.subset_fraction = 0.0;
  BinaryRelation rel2 = MakeBipartite(no_subsets);
  EXPECT_NE(rel.tuples(), rel2.tuples());
}

TEST(Presets, ScaleChangesSize) {
  BinaryRelation small = MakePreset(DatasetPreset::kJokes, 0.05);
  BinaryRelation large = MakePreset(DatasetPreset::kJokes, 0.2);
  EXPECT_GT(large.size(), 2 * small.size());
}

TEST(Presets, NamesAreStable) {
  EXPECT_STREQ(PresetName(DatasetPreset::kDblp), "DBLP");
  EXPECT_STREQ(PresetName(DatasetPreset::kImage), "Image");
  EXPECT_EQ(AllPresets().size(), 6u);
}

}  // namespace
}  // namespace jpmm
