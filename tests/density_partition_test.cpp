// Tests for core/density_partition.h: the global-threshold subrelation
// split (Algorithm 1's R-/R+/S-/S+) and the density-adaptive grid that
// decomposes the heavy product (degree remaps, band shapes, exact pruning
// bounds, and byte-identical execution through MmJoinTwoPath).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "core/density_partition.h"
#include "core/mm_join.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "matrix/calibration.h"
#include "matrix/sparse_matrix.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPathCounted;
using testutil::RandomRelation;
using testutil::Sorted;

// ---- TwoPathPartition (the paper's global light/heavy threshold) ---------

TEST(Partition, SubrelationsFormAPartition) {
  BinaryRelation r = RandomRelation(40, 30, 300, 1.2, 21);
  BinaryRelation s = RandomRelation(35, 30, 280, 1.2, 22);
  IndexedRelation ri(r), si(s);
  for (uint64_t d1 : {1ull, 2ull, 5ull}) {
    for (uint64_t d2 : {1ull, 3ull, 8ull}) {
      TwoPathPartition part(ri, si, Thresholds{d1, d2});
      BinaryRelation rm = part.RMinus(), rp = part.RPlus();
      EXPECT_EQ(rm.size() + rp.size(), r.size());
      // Disjoint: no tuple in both.
      for (const Tuple& t : rp.tuples()) {
        EXPECT_FALSE(std::binary_search(rm.tuples().begin(),
                                        rm.tuples().end(), t));
      }
      BinaryRelation sm = part.SMinus(), sp = part.SPlus();
      EXPECT_EQ(sm.size() + sp.size(), s.size());
    }
  }
}

TEST(Partition, RPlusTuplesAreHeavyBothSides) {
  BinaryRelation r = RandomRelation(30, 20, 250, 1.0, 23);
  IndexedRelation ri(r);
  const Thresholds t{2, 3};
  TwoPathPartition part(ri, ri, t);
  const BinaryRelation rplus = part.RPlus();
  for (const Tuple& tp : rplus.tuples()) {
    EXPECT_GT(ri.DegX(tp.x), t.delta2);
    EXPECT_GT(ri.DegY(tp.y), t.delta1);
  }
  const BinaryRelation rminus = part.RMinus();
  for (const Tuple& tm : rminus.tuples()) {
    EXPECT_TRUE(ri.DegX(tm.x) <= t.delta2 || ri.DegY(tm.y) <= t.delta1);
  }
}

TEST(Partition, LightnessOraclesMatchDegrees) {
  BinaryRelation r = RandomRelation(25, 25, 200, 1.5, 24);
  IndexedRelation ri(r);
  const Thresholds t{3, 4};
  TwoPathPartition part(ri, ri, t);
  for (Value a = 0; a < ri.num_x(); ++a) {
    EXPECT_EQ(part.XLight(a), ri.DegX(a) <= t.delta2);
    EXPECT_EQ(part.ZLight(a), ri.DegX(a) <= t.delta2);
  }
  for (Value b = 0; b < ri.num_y(); ++b) {
    EXPECT_EQ(part.YLight(b), ri.DegY(b) <= t.delta1);
  }
}

TEST(Partition, HeavyIdsAreDenseAndAscending) {
  BinaryRelation r = RandomRelation(50, 40, 500, 1.2, 25);
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{2, 2});
  const auto& hx = part.heavy_x();
  EXPECT_TRUE(std::is_sorted(hx.begin(), hx.end()));
  for (size_t i = 0; i < hx.size(); ++i) {
    EXPECT_EQ(part.HeavyXId(hx[i]), static_cast<Value>(i));
  }
  // Non-heavy values map to invalid.
  for (Value a = 0; a < ri.num_x(); ++a) {
    if (!std::binary_search(hx.begin(), hx.end(), a)) {
      EXPECT_EQ(part.HeavyXId(a), kInvalidValue);
    }
  }
}

TEST(Partition, HeavyValuesExceedThresholds) {
  BinaryRelation r = RandomRelation(50, 40, 500, 1.2, 26);
  IndexedRelation ri(r);
  const Thresholds t{2, 3};
  TwoPathPartition part(ri, ri, t);
  for (Value a : part.heavy_x()) EXPECT_GT(ri.DegX(a), t.delta2);
  for (Value b : part.heavy_y()) EXPECT_GT(ri.DegY(b), t.delta1);
  for (Value c : part.heavy_z()) EXPECT_GT(ri.DegX(c), t.delta2);
}

TEST(Partition, HugeThresholdsMakeEverythingLight) {
  BinaryRelation r = RandomRelation(30, 30, 300, 1.0, 27);
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{1000, 1000});
  EXPECT_TRUE(part.heavy_x().empty());
  EXPECT_TRUE(part.heavy_y().empty());
  EXPECT_TRUE(part.heavy_z().empty());
  EXPECT_EQ(part.RPlus().size(), 0u);
  EXPECT_EQ(part.RMinus().size(), r.size());
}

TEST(Partition, ThresholdOneMaximizesHeavyPart) {
  // A star: one hub x connected to many ys that each connect back.
  BinaryRelation r;
  for (Value b = 0; b < 10; ++b) {
    r.Add(0, b);             // hub x=0, degree 10
    r.Add(b + 1, b);         // pendant xs, degree 1
    r.Add(b + 1, (b + 1) % 10);
  }
  r.Finalize();
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{1, 1});
  // Hub is heavy (degree 10 > 1), y values have degree 3 > 1.
  EXPECT_NE(part.HeavyXId(0), kInvalidValue);
  EXPECT_FALSE(part.heavy_y().empty());
}

TEST(Partition, EmptyRelations) {
  BinaryRelation r;
  r.Finalize();
  IndexedRelation ri(r);
  TwoPathPartition part(ri, ri, Thresholds{1, 1});
  EXPECT_TRUE(part.heavy_x().empty());
  EXPECT_TRUE(part.heavy_y().empty());
}

// ---- DensityGrid (degree-remapped block decomposition) -------------------

// Synthetic constant rates so grid shapes are deterministic across machines.
const SparseKernelRates& TestRates() {
  static const SparseKernelRates rates =
      SparseKernelRates::FromRates(1e9, 1e9, 1e10);
  return rates;
}

// Skewed 0/1 matrix: row i's degree decays like rows / (i + 1), columns
// drawn from a deterministic LCG so tests replay bit-for-bit.
CsrMatrix MakeSkewedCsr(size_t rows, size_t cols, uint64_t seed) {
  CsrMatrix m(cols);
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t i = 0; i < rows; ++i) {
    const size_t deg = std::min(cols, 1 + rows / (i + 1));
    std::set<uint32_t> cs;
    for (size_t j = 0; j < deg; ++j) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      cs.insert(static_cast<uint32_t>((state >> 33) % cols));
    }
    for (uint32_t c : cs) m.PushCol(c);
    m.FinishRow();
  }
  return m;
}

DensityGridOptions SmallGridOptions() {
  DensityGridOptions o;
  o.row_block = 4;
  o.rates = &TestRates();
  return o;
}

TEST(DensityGrid, PermutationsAreBijectionsAndBandsCover) {
  CsrMatrix a = MakeSkewedCsr(37, 20, 1);
  CsrMatrix b = MakeSkewedCsr(20, 29, 2);
  const DensityGridOptions opts = SmallGridOptions();
  DensityGrid g = BuildDensityGrid(a, b, opts);

  auto is_bijection = [](const std::vector<uint32_t>& perm, size_t n) {
    if (perm.size() != n) return false;
    std::vector<uint32_t> sorted(perm);
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < n; ++i) {
      if (sorted[i] != i) return false;
    }
    return true;
  };
  EXPECT_TRUE(is_bijection(g.row_perm, a.rows()));
  EXPECT_TRUE(is_bijection(g.col_perm, b.cols()));

  // Bands tile [0, rows) / [0, cols); interior row bounds snap to the work
  // unit so an executing chunk never straddles two bands.
  ASSERT_GE(g.row_bands.size(), 2u);
  EXPECT_EQ(g.row_bands.front(), 0u);
  EXPECT_EQ(g.row_bands.back(), a.rows());
  EXPECT_TRUE(std::is_sorted(g.row_bands.begin(), g.row_bands.end()));
  for (size_t i = 1; i + 1 < g.row_bands.size(); ++i) {
    EXPECT_EQ(g.row_bands[i] % opts.row_block, 0u);
  }
  ASSERT_GE(g.col_bands.size(), 2u);
  EXPECT_EQ(g.col_bands.front(), 0u);
  EXPECT_EQ(g.col_bands.back(), b.cols());
  EXPECT_TRUE(std::is_sorted(g.col_bands.begin(), g.col_bands.end()));

  // Scheduled + pruned cells tile the grid; every scheduled block sits
  // exactly on a (row band, col band) cell.
  EXPECT_EQ(g.blocks.size() + g.pruned_blocks, g.grid_blocks);
  EXPECT_EQ(g.grid_blocks,
            static_cast<uint64_t>(g.num_row_bands()) * g.num_col_bands());
  for (const BlockKernelChoice& c : g.blocks) {
    EXPECT_TRUE(std::binary_search(g.row_bands.begin(), g.row_bands.end(),
                                   c.row_begin));
    EXPECT_TRUE(std::binary_search(g.row_bands.begin(), g.row_bands.end(),
                                   c.row_end));
    EXPECT_TRUE(std::binary_search(g.col_bands.begin(), g.col_bands.end(),
                                   c.col_begin));
    EXPECT_TRUE(std::binary_search(g.col_bands.begin(), g.col_bands.end(),
                                   c.col_end));
    EXPECT_LT(c.row_begin, c.row_end);
    EXPECT_LT(c.col_begin, c.col_end);
  }

  // The row remap is degree-sorted: nnz is non-increasing along row_perm.
  for (size_t i = 1; i < g.row_perm.size(); ++i) {
    EXPECT_GE(a.RowRangeNnz(g.row_perm[i - 1], g.row_perm[i - 1] + 1),
              a.RowRangeNnz(g.row_perm[i], g.row_perm[i] + 1));
  }
}

TEST(DensityGrid, SchedulingMatchesProductOracle) {
  // The expansion bound of a cell is exact: expand > 0 iff some witness
  // (r, y, c) lands in the cell, iff the remapped product block has a
  // nonzero. So scheduled <=> nonzero block, pruned <=> all-zero block.
  CsrMatrix a = MakeSkewedCsr(41, 17, 3);
  CsrMatrix b = MakeSkewedCsr(17, 23, 4);
  DensityGrid g = BuildDensityGrid(a, b, SmallGridOptions());
  Matrix prod = CsrCsrProduct(a, b, 1);

  std::set<std::pair<uint32_t, uint32_t>> scheduled;
  for (const BlockKernelChoice& c : g.blocks) {
    scheduled.insert({c.row_begin, c.col_begin});
  }
  uint64_t pruned_seen = 0;
  for (size_t i = 0; i < g.num_row_bands(); ++i) {
    for (size_t j = 0; j < g.num_col_bands(); ++j) {
      bool nonzero = false;
      for (uint32_t r = g.row_bands[i]; r < g.row_bands[i + 1] && !nonzero;
           ++r) {
        for (uint32_t k = g.col_bands[j]; k < g.col_bands[j + 1]; ++k) {
          if (prod.At(g.row_perm[r], g.col_perm[k]) > 0.5f) {
            nonzero = true;
            break;
          }
        }
      }
      const bool is_scheduled =
          scheduled.count({g.row_bands[i], g.col_bands[j]}) > 0;
      EXPECT_EQ(is_scheduled, nonzero)
          << "cell (" << i << ", " << j << ")";
      if (!is_scheduled) ++pruned_seen;
    }
  }
  EXPECT_EQ(pruned_seen, g.pruned_blocks);
}

TEST(DensityGrid, DisjointComponentsPruneBlocks) {
  // Two disconnected components with very different degrees: degree
  // sorting separates them into distinct bands, so the cross cells have a
  // zero witness bound and must be pruned.
  const size_t rows = 48, inner = 24, cols = 48;
  CsrMatrix a(inner);
  for (size_t i = 0; i < rows; ++i) {
    if (i < 16) {
      for (uint32_t y = 0; y < 12; ++y) a.PushCol(y);  // dense hub component
    } else {
      a.PushCol(12 + static_cast<uint32_t>(i % 12));   // sparse tail
    }
    a.FinishRow();
  }
  CsrMatrix b(cols);
  for (size_t y = 0; y < inner; ++y) {
    if (y < 12) {
      for (uint32_t c = 0; c < 16; ++c) b.PushCol(c);
    } else {
      b.PushCol(16 + static_cast<uint32_t>(y));
    }
    b.FinishRow();
  }
  DensityGrid g = BuildDensityGrid(a, b, SmallGridOptions());
  EXPECT_GT(g.pruned_blocks, 0u);
  EXPECT_TRUE(g.num_row_bands() > 1 || g.num_col_bands() > 1);
  EXPECT_EQ(g.blocks.size() + g.pruned_blocks, g.grid_blocks);
}

TEST(DensityGrid, DeterministicAndSignatureStable) {
  CsrMatrix a = MakeSkewedCsr(33, 19, 5);
  CsrMatrix b = MakeSkewedCsr(19, 27, 6);
  DensityGrid g1 = BuildDensityGrid(a, b, SmallGridOptions());
  DensityGrid g2 = BuildDensityGrid(a, b, SmallGridOptions());
  EXPECT_EQ(g1.row_perm, g2.row_perm);
  EXPECT_EQ(g1.col_perm, g2.col_perm);
  EXPECT_EQ(g1.row_bands, g2.row_bands);
  EXPECT_EQ(g1.col_bands, g2.col_bands);
  EXPECT_EQ(g1.blocks.size(), g2.blocks.size());
  EXPECT_EQ(g1.Signature(), g2.Signature());
  const std::string expect = std::to_string(g1.num_row_bands()) + "x" +
                             std::to_string(g1.num_col_bands()) + "/s" +
                             std::to_string(g1.blocks.size()) + "/p" +
                             std::to_string(g1.pruned_blocks);
  EXPECT_EQ(g1.Signature(), expect);
}

TEST(DensityGrid, DegenerateOperands) {
  CsrMatrix a(0);  // 0 columns; no rows
  CsrMatrix b(7);
  DensityGrid g = BuildDensityGrid(a, b, SmallGridOptions());
  EXPECT_EQ(g.grid_blocks, 0u);
  EXPECT_TRUE(g.blocks.empty());
  EXPECT_FALSE(g.beneficial);
}

// ---- MmJoinTwoPath under PartitionMode (end-to-end equivalence) ----------

TEST(MmJoinDensity, ForcedGridIsByteIdenticalToUniform) {
  BinaryRelation r = RandomRelation(120, 60, 1400, 1.3, 31);
  BinaryRelation s = RandomRelation(110, 60, 1300, 1.3, 32);
  IndexedRelation ri(r), si(s);
  const auto oracle = OracleTwoPathCounted(r, s);
  for (DedupImpl dedup : {DedupImpl::kStampArray, DedupImpl::kSortLocal}) {
    for (int threads : {1, 3}) {
      MmJoinOptions opts;
      opts.thresholds = {2, 2};
      opts.count_witnesses = true;
      opts.row_block = 8;
      opts.dedup = dedup;
      opts.threads = threads;

      opts.partition = PartitionMode::kOff;
      auto off = MmJoinTwoPath(ri, si, opts);
      EXPECT_FALSE(off.partition_used);
      EXPECT_EQ(off.partition_signature, "uniform");

      opts.partition = PartitionMode::kForce;
      auto force = MmJoinTwoPath(ri, si, opts);
      ASSERT_GT(force.heavy_rows, 0u) << "test premise: heavy part exists";
      EXPECT_TRUE(force.partition_used);
      EXPECT_NE(force.partition_signature, "uniform");
      EXPECT_EQ(force.partition_blocks_scheduled +
                    force.partition_blocks_pruned,
                force.partition_row_bands * force.partition_col_bands);

      EXPECT_EQ(Sorted(off.counted), oracle);
      EXPECT_EQ(Sorted(force.counted), oracle);
      // Work units are remap-invariant: same chunk count either way.
      EXPECT_EQ(force.heavy_blocks_total, off.heavy_blocks_total);
    }
  }
}

TEST(MmJoinDensity, AutoModeNeverChangesOutput) {
  for (uint64_t seed : {41ull, 42ull, 43ull}) {
    BinaryRelation r = RandomRelation(90, 45, 900, 1.5, seed);
    BinaryRelation s = RandomRelation(80, 45, 850, 1.5, seed + 100);
    IndexedRelation ri(r), si(s);
    MmJoinOptions opts;
    opts.thresholds = {2, 2};
    opts.count_witnesses = true;
    opts.row_block = 8;
    opts.threads = 2;
    opts.partition = PartitionMode::kAuto;
    auto auto_res = MmJoinTwoPath(ri, si, opts);
    opts.partition = PartitionMode::kOff;
    auto off_res = MmJoinTwoPath(ri, si, opts);
    EXPECT_EQ(Sorted(auto_res.counted), Sorted(off_res.counted));
  }
}

TEST(MmJoinDensity, SignatureStableAcrossThreadCounts) {
  BinaryRelation r = RandomRelation(100, 50, 1200, 1.4, 51);
  IndexedRelation ri(r);
  std::string first;
  for (int threads : {1, 2, 4}) {
    MmJoinOptions opts;
    opts.thresholds = {2, 2};
    opts.row_block = 8;
    opts.threads = threads;
    opts.partition = PartitionMode::kForce;
    auto res = MmJoinTwoPath(ri, ri, opts);
    ASSERT_GT(res.heavy_rows, 0u);
    if (first.empty()) {
      first = res.partition_signature;
    } else {
      EXPECT_EQ(res.partition_signature, first);
    }
  }
  EXPECT_FALSE(first.empty());
}

TEST(MmJoinDensity, EarlyExitBalancesUnderRemap) {
  // A limit sink that fills mid-way through the heavy chunks: executed +
  // skipped must still equal the planned total under the remapped schedule.
  BinaryRelation r;
  for (Value x = 0; x < 120; ++x) {
    for (Value y = 0; y < 10; ++y) r.Add(x, (x + y) % 40);
  }
  r.Finalize();
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.row_block = 8;
  opts.partition = PartitionMode::kForce;
  LimitSink sink(5);
  opts.sink = &sink;
  auto res = MmJoinTwoPath(ri, ri, opts);
  ASSERT_GT(res.heavy_rows, 0u);
  EXPECT_TRUE(res.partition_used);
  EXPECT_EQ(res.heavy_blocks_executed + res.heavy_blocks_skipped,
            res.heavy_blocks_total);
  EXPECT_GT(res.heavy_blocks_skipped, 0u);
  EXPECT_EQ(sink.pairs().size(), 5u);
  EXPECT_EQ(res.light_chunks_executed + res.light_chunks_skipped,
            res.light_chunks_total);
}

TEST(MmJoinDensity, EngineReportsStableSignatureAcrossReExecutions) {
  // ExecStats carries the partitioning record through the engine, and the
  // signature fingerprint is identical on every re-execution of one
  // PreparedQuery (plan-cache hit or miss).
  QueryEngine engine;
  engine.catalog().Put("R", RandomRelation(120, 60, 1400, 1.3, 61));
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  PreparedQuery query;
  ASSERT_TRUE(engine.Prepare(spec, &query).ok());

  ExecOptions exec;
  exec.threads = 2;
  exec.thresholds = {2, 2};
  exec.partition = PartitionMode::kForce;
  std::string first;
  size_t first_size = 0;
  for (int run = 0; run < 3; ++run) {
    VectorSink sink;
    ExecStats stats;
    const QueryStatus st = engine.Execute(query, sink, exec, &stats);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_TRUE(stats.partition_used);
    EXPECT_EQ(stats.partition_blocks_scheduled + stats.partition_blocks_pruned,
              stats.partition_row_bands * stats.partition_col_bands);
    if (run == 0) {
      first = stats.partition_signature;
      first_size = sink.pairs().size();
      EXPECT_NE(first, "off");
      EXPECT_NE(first, "uniform");
    } else {
      EXPECT_EQ(stats.partition_signature, first);
      EXPECT_EQ(sink.pairs().size(), first_size);
    }
  }
}

}  // namespace
}  // namespace jpmm
