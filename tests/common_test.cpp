// Unit tests for src/common: rng, zipf, bitset, stamp sets, thread pool,
// hashing.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bitset.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace jpmm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(7);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.NextBounded(10)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 10 * 0.9);
    EXPECT_LT(b, kDraws / 10 * 1.1);
  }
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(100, 0.0, 9);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.Sample()];
  // Every rank drawn at least once, max/min ratio bounded.
  int mn = counts[0], mx = counts[0];
  for (int c : counts) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_GT(mn, 0);
  EXPECT_LT(mx, 3 * mn);
}

TEST(Zipf, SkewFavoursLowRanks) {
  ZipfSampler z(1000, 1.0, 13);
  int low = 0, high = 0;
  for (int i = 0; i < 100000; ++i) {
    const uint32_t r = z.Sample();
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  // Theory for theta=1, n=1000: P(rank<10)/P(rank>=500) ~ 4.2.
  EXPECT_GT(low, 3 * high);
}

TEST(Zipf, SamplesWithinRange) {
  ZipfSampler z(7, 1.5, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(), 7u);
}

TEST(Bitset, SetTestClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(Bitset, IntersectsAndAndCount) {
  DynamicBitset a(200), b(200);
  a.Set(3);
  a.Set(100);
  a.Set(199);
  b.Set(4);
  b.Set(100);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.AndCount(b), 1u);
  b.Clear(100);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_EQ(a.AndCount(b), 0u);
}

TEST(Bitset, OrWithAndAppendSetBits) {
  DynamicBitset a(70), b(70);
  a.Set(1);
  b.Set(65);
  a.OrWith(b);
  std::vector<uint32_t> bits;
  a.AppendSetBits(&bits);
  EXPECT_EQ(bits, (std::vector<uint32_t>{1, 65}));
}

TEST(StampSet, InsertAndEpochClear) {
  StampSet s(10);
  EXPECT_TRUE(s.Insert(3));
  EXPECT_FALSE(s.Insert(3));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  s.NewEpoch();
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Insert(3));
}

TEST(StampSet, ManyEpochsStayCorrect) {
  StampSet s(4);
  for (int e = 0; e < 1000; ++e) {
    s.NewEpoch();
    EXPECT_TRUE(s.Insert(e % 4));
    EXPECT_FALSE(s.Insert(e % 4));
  }
}

TEST(StampCounter, AddAndGet) {
  StampCounter c(8);
  EXPECT_EQ(c.Add(2, 5), 0u);
  EXPECT_EQ(c.Add(2, 3), 5u);
  EXPECT_EQ(c.Get(2), 8u);
  EXPECT_EQ(c.Get(3), 0u);
  c.NewEpoch();
  EXPECT_EQ(c.Get(2), 0u);
  EXPECT_EQ(c.Add(2, 1), 0u);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

// Regression: a throwing task used to skip the in_flight_ decrement, so
// WaitIdle() deadlocked forever. The decrement is now unconditional and the
// exception is rethrown by WaitIdle instead of being lost.
TEST(ThreadPool, ThrowingTaskDoesNotDeadlockWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);
  // The pool survives the exception and keeps executing.
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.WaitIdle();  // must not hang, must not rethrow a stale error
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, GrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.EnsureWorkers(2);  // no-op
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(threads, hits.size(), [&](size_t b, size_t e, int) {
      for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(4, 0, [&](size_t, size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, WorkerIdsAreDistinctChunks) {
  std::vector<int> owner(100, -1);
  ParallelFor(4, owner.size(), [&](size_t b, size_t e, int w) {
    for (size_t i = b; i < e; ++i) owner[i] = w;
  });
  // Chunks are contiguous and non-decreasing in worker id.
  for (size_t i = 1; i < owner.size(); ++i) {
    EXPECT_GE(owner[i], owner[i - 1]);
  }
}

// Pool-reuse regression: ParallelFor used to spawn fresh std::threads on
// every call. It now runs on the persistent process-wide pool, so after a
// warm-up call at a given width, repeated calls spawn NOTHING.
TEST(ParallelFor, ReusesPoolAcrossCalls) {
  std::atomic<size_t> sink{0};
  ParallelFor(4, 64, [&](size_t b, size_t e, int) {
    sink.fetch_add(e - b);
  });  // warm-up: may grow the global pool
  const size_t spawned = ThreadPool::TotalThreadsSpawned();
  for (int call = 0; call < 25; ++call) {
    ParallelFor(4, 64, [&](size_t b, size_t e, int) {
      sink.fetch_add(e - b);
    });
    ParallelForDynamic(4, 64, 8, [&](size_t b, size_t e, int) {
      sink.fetch_add(e - b);
    });
  }
  EXPECT_EQ(ThreadPool::TotalThreadsSpawned(), spawned)
      << "ParallelFor spawned threads per call instead of reusing the pool";
  EXPECT_EQ(sink.load(), 64u * 51u);
}

TEST(ParallelFor, PropagatesExceptionToCaller) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](size_t b, size_t, int) {
                    if (b >= 50) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
  // The pool is still healthy afterwards.
  std::atomic<int> hits{0};
  ParallelFor(4, 8, [&](size_t b, size_t e, int) {
    hits.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(hits.load(), 8);
}

TEST(ParallelFor, NestedCallRunsInlineWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  ParallelFor(4, 8, [&](size_t, size_t, int) {
    // Re-entering the pool from a pool task must not deadlock: on a pool
    // thread the nested call collapses to inline execution (single chunk,
    // worker 0). The outer chunk run by the calling thread is not on a pool
    // thread and may legitimately fan out again.
    const bool on_pool = ThreadPool::OnPoolThread();
    ParallelForDynamic(4, 10, 2, [&, on_pool](size_t b, size_t e, int w) {
      if (on_pool) EXPECT_EQ(w, 0);
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  // Every outer chunk covered [0, 10) exactly once.
  EXPECT_GE(inner_total.load(), 10);
  EXPECT_EQ(inner_total.load() % 10, 0);
}

TEST(ParallelForDynamic, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    for (size_t grain : {1u, 3u, 64u, 1000u, 5000u}) {
      std::vector<std::atomic<int>> hits(1000);
      ParallelForDynamic(threads, hits.size(), grain,
                         [&](size_t b, size_t e, int) {
                           for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
                         });
      for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelForDynamic, EmptyRangeIsNoop) {
  bool called = false;
  ParallelForDynamic(4, 0, 16, [&](size_t, size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForDynamic, WorkerIndicesStayInBounds) {
  const int threads = 3;
  std::vector<std::atomic<int>> per_worker(threads);
  ParallelForDynamic(threads, 500, 7, [&](size_t b, size_t e, int w) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, threads);
    per_worker[static_cast<size_t>(w)].fetch_add(static_cast<int>(e - b));
  });
  int total = 0;
  for (auto& c : per_worker) total += c.load();
  EXPECT_EQ(total, 500);
}

TEST(ParallelForDynamic, ChunksRespectGrainBoundaries) {
  // On the pooled (non-inline) path every claimed range starts on a grain
  // boundary and spans at most one grain.
  const size_t grain = 16;
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  ParallelForDynamic(4, 100, grain, [&](size_t b, size_t e, int) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b % grain, 0u);
    EXPECT_LE(e - b, grain);
    EXPECT_LE(e, 100u);
  }
}

TEST(Hash, PackUnpackRoundTrip) {
  const OutPair p{123456, 654321};
  const uint64_t key = PackPair(p.x, p.z);
  const OutPair q = UnpackPair(key);
  EXPECT_EQ(p, q);
}

TEST(Hash, Mix64Avalanches) {
  // Neighbouring inputs should produce very different outputs.
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace jpmm
