// Correctness tests for Algorithm 1 (MMJoin) and the combinatorial Non-MM
// join, against brute-force oracles, across thresholds / skews / threads —
// the central property suite of the library.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "core/join_project.h"
#include "core/mm_join.h"
#include "core/nonmm_join.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::OracleTwoPathCounted;
using testutil::RandomRelation;
using testutil::Sorted;

TEST(MmJoin, TinyHandComputedExample) {
  // R = {(0,0), (0,1), (1,1)}, S = {(5,0), (6,1)}:
  // output = {(0,5), (0,6), (1,6)}.
  BinaryRelation r, s;
  r.Add(0, 0);
  r.Add(0, 1);
  r.Add(1, 1);
  r.Finalize();
  s.Add(5, 0);
  s.Add(6, 1);
  s.Finalize();
  IndexedRelation ri(r), si(s);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  auto res = MmJoinTwoPath(ri, si, opts);
  EXPECT_EQ(Sorted(res.pairs),
            (std::vector<OutPair>{{0, 5}, {0, 6}, {1, 6}}));
}

TEST(MmJoin, PaperExample2) {
  // Example 2 of the paper: two bipartite relations where x,y in {1..6};
  // light part has values 1-3, heavy part 4-6 under Delta1 = Delta2 = 2.
  BinaryRelation r, s;
  // R: 1-1, 2-2, 3-3 (light chains) and dense block on {4,5,6}.
  r.Add(1, 1);
  r.Add(2, 2);
  r.Add(3, 3);
  r.Add(4, 4);
  r.Add(4, 6);
  r.Add(5, 4);
  r.Add(5, 5);
  r.Add(5, 6);
  r.Add(6, 4);
  r.Add(6, 5);
  r.Finalize();
  s.Add(1, 1);
  s.Add(2, 2);
  s.Add(3, 3);
  s.Add(4, 4);
  s.Add(4, 5);
  s.Add(5, 4);
  s.Add(5, 5);
  s.Add(5, 6);
  s.Add(6, 5);
  s.Add(6, 6);
  s.Finalize();
  IndexedRelation ri(r), si(s);
  MmJoinOptions opts;
  opts.thresholds = {2, 2};
  opts.count_witnesses = true;
  auto res = MmJoinTwoPath(ri, si, opts);
  EXPECT_EQ(Sorted(res.counted), OracleTwoPathCounted(r, s));
  // The heavy block {4,5,6} x {4,5,6} should have gone through the matrix.
  EXPECT_GT(res.heavy_rows, 0u);
  EXPECT_GT(res.heavy_inner, 0u);
}

// ---------------------------------------------------------------------------
// Property sweep: (num_x, num_y, tuples, skew, delta1, delta2, threads).
struct SweepParam {
  uint32_t nx, ny, tuples;
  double skew;
  uint64_t d1, d2;
  int threads;
};

class MmJoinSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MmJoinSweep, EnumerationMatchesOracle) {
  const SweepParam p = GetParam();
  BinaryRelation r = RandomRelation(p.nx, p.ny, p.tuples, p.skew, 31);
  BinaryRelation s = RandomRelation(p.nx + 7, p.ny, p.tuples, p.skew, 32);
  IndexedRelation ri(r), si(s);
  MmJoinOptions opts;
  opts.thresholds = {p.d1, p.d2};
  opts.threads = p.threads;
  auto res = MmJoinTwoPath(ri, si, opts);
  EXPECT_EQ(Sorted(res.pairs), OracleTwoPath(r, s));
}

TEST_P(MmJoinSweep, CountsMatchOracle) {
  const SweepParam p = GetParam();
  BinaryRelation r = RandomRelation(p.nx, p.ny, p.tuples, p.skew, 33);
  BinaryRelation s = RandomRelation(p.nx + 3, p.ny, p.tuples, p.skew, 34);
  IndexedRelation ri(r), si(s);
  MmJoinOptions opts;
  opts.thresholds = {p.d1, p.d2};
  opts.threads = p.threads;
  opts.count_witnesses = true;
  auto res = MmJoinTwoPath(ri, si, opts);
  EXPECT_EQ(Sorted(res.counted), OracleTwoPathCounted(r, s));
}

TEST_P(MmJoinSweep, NonMmMatchesOracle) {
  const SweepParam p = GetParam();
  BinaryRelation r = RandomRelation(p.nx, p.ny, p.tuples, p.skew, 35);
  BinaryRelation s = RandomRelation(p.nx + 5, p.ny, p.tuples, p.skew, 36);
  IndexedRelation ri(r), si(s);
  NonMmJoinOptions opts;
  opts.thresholds = {p.d1, p.d2};
  opts.threads = p.threads;
  auto res = NonMmJoinTwoPath(ri, si, opts);
  EXPECT_EQ(Sorted(res.pairs), OracleTwoPath(r, s));

  opts.count_witnesses = true;
  auto counted = NonMmJoinTwoPath(ri, si, opts);
  EXPECT_EQ(Sorted(counted.counted), OracleTwoPathCounted(r, s));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MmJoinSweep,
    ::testing::Values(
        // all-light extreme
        SweepParam{30, 20, 150, 0.8, 1000, 1000, 1},
        // all-heavy extreme
        SweepParam{30, 20, 150, 0.8, 1, 1, 1},
        // balanced thresholds, single thread
        SweepParam{40, 30, 300, 1.0, 3, 3, 1},
        // asymmetric thresholds
        SweepParam{40, 30, 300, 1.0, 2, 8, 1},
        SweepParam{40, 30, 300, 1.0, 8, 2, 1},
        // heavy skew (hubs)
        SweepParam{60, 40, 500, 1.6, 4, 4, 1},
        // no skew (uniform)
        SweepParam{60, 40, 500, 0.0, 4, 4, 1},
        // multithreaded variants
        SweepParam{40, 30, 300, 1.0, 3, 3, 4},
        SweepParam{60, 40, 500, 1.6, 2, 2, 3},
        // larger instance
        SweepParam{200, 150, 3000, 1.2, 6, 6, 2}));

// ---------------------------------------------------------------------------

TEST(MmJoin, SelfJoinMatchesOracle) {
  BinaryRelation r = RandomRelation(50, 35, 400, 1.3, 41);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {3, 3};
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_EQ(Sorted(res.pairs), OracleTwoPath(r, r));
}

TEST(MmJoin, CommunityGraphFromExample1) {
  // Example 1: N^{3/2} join size but Theta(N) projected output.
  BinaryRelation r = CommunityGraph(4, 24, 0.9, 7);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {8, 8};
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_EQ(Sorted(res.pairs), OracleTwoPath(r, r));
  EXPECT_GT(res.heavy_rows, 0u);  // communities are heavy
}

TEST(MmJoin, MinCountFiltersPairs) {
  BinaryRelation r = RandomRelation(30, 20, 250, 1.0, 42);
  IndexedRelation ri(r);
  for (uint32_t c : {2u, 3u, 5u}) {
    MmJoinOptions opts;
    opts.thresholds = {3, 3};
    opts.count_witnesses = true;
    opts.min_count = c;
    auto res = MmJoinTwoPath(ri, ri, opts);
    EXPECT_EQ(Sorted(res.counted), OracleTwoPathCounted(r, r, c)) << "c=" << c;
  }
}

TEST(MmJoin, SortDedupMatchesStampDedup) {
  BinaryRelation r = RandomRelation(45, 30, 350, 1.2, 43);
  IndexedRelation ri(r);
  MmJoinOptions stamp;
  stamp.thresholds = {3, 3};
  MmJoinOptions sortd = stamp;
  sortd.dedup = DedupImpl::kSortLocal;
  EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, stamp).pairs),
            Sorted(MmJoinTwoPath(ri, ri, sortd).pairs));

  stamp.count_witnesses = sortd.count_witnesses = true;
  EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, stamp).counted),
            Sorted(MmJoinTwoPath(ri, ri, sortd).counted));
}

TEST(MmJoin, SmallRowBlocksMatch) {
  BinaryRelation r = RandomRelation(60, 30, 600, 1.4, 44);
  IndexedRelation ri(r);
  MmJoinOptions a;
  a.thresholds = {2, 2};
  a.row_block = 1;
  MmJoinOptions b = a;
  b.row_block = 7;
  MmJoinOptions c = a;
  c.row_block = 4096;
  const auto ref = Sorted(MmJoinTwoPath(ri, ri, a).pairs);
  EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, b).pairs), ref);
  EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, c).pairs), ref);
}

TEST(MmJoin, MemoryCapRaisesThresholds) {
  BinaryRelation r = RandomRelation(200, 100, 3000, 1.2, 45);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.max_matrix_bytes = 1024;  // absurdly small: force adjustment
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_GT(res.adjusted_thresholds.delta1, 1u);
  EXPECT_EQ(Sorted(res.pairs), OracleTwoPath(r, r));
}

TEST(MmJoin, EmptyRelations) {
  BinaryRelation r;
  r.Finalize();
  IndexedRelation ri(r);
  MmJoinOptions opts;
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_TRUE(res.pairs.empty());
}

TEST(MmJoin, DisjointYDomainsProduceNothing) {
  BinaryRelation r, s;
  r.Add(0, 0);
  r.Add(1, 1);
  r.Finalize();
  s.Add(0, 5);
  s.Add(1, 6);
  s.Finalize();
  IndexedRelation ri(r), si(s);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  EXPECT_TRUE(MmJoinTwoPath(ri, si, opts).pairs.empty());
}

TEST(MmJoin, OutputHasNoDuplicates) {
  BinaryRelation r = RandomRelation(80, 40, 900, 1.3, 46);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {3, 5};
  auto res = MmJoinTwoPath(ri, ri, opts);
  auto sorted = Sorted(res.pairs);
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(NonMm, HeavyPathExercised) {
  BinaryRelation r = CommunityGraph(3, 16, 1.0, 3);
  IndexedRelation ri(r);
  NonMmJoinOptions opts;
  opts.thresholds = {4, 4};
  auto res = NonMmJoinTwoPath(ri, ri, opts);
  EXPECT_GT(res.heavy_rows, 0u);
  EXPECT_EQ(Sorted(res.pairs), OracleTwoPath(r, r));
}

// Guard for the dynamic (atomic-chunk-claiming) scheduler: on skewed
// inputs, every thread count — including ones above the hardware count —
// must produce the identical sorted output. A partition-dependent race or
// per-worker-state collision would show up as a diff here.
TEST(MmJoin, ThreadCountDoesNotChangeSortedOutput) {
  BipartiteSpec spec;
  spec.num_sets = 1500;
  spec.dom_size = 500;
  spec.min_set_size = 1;
  spec.max_set_size = 16;
  spec.element_skew = 0.9;  // zipf-heavy hubs => skewed x/y degrees
  spec.size_skew = 1.0;
  spec.seed = 97;
  BinaryRelation rel = MakeBipartite(spec);
  IndexedRelation ri(rel);

  const std::vector<int> sweep = {1, 3, HardwareThreads()};
  for (DedupImpl dedup : {DedupImpl::kStampArray, DedupImpl::kSortLocal}) {
    MmJoinOptions base;
    base.thresholds = {4, 4};  // force a real heavy part
    base.dedup = dedup;
    base.threads = 1;
    const auto ref = Sorted(MmJoinTwoPath(ri, ri, base).pairs);
    EXPECT_FALSE(ref.empty());
    for (int threads : sweep) {
      MmJoinOptions opts = base;
      opts.threads = threads;
      EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, opts).pairs), ref)
          << "threads=" << threads;
    }
    // Counted variant: witness counts must also be partition-independent.
    MmJoinOptions counted = base;
    counted.count_witnesses = true;
    const auto cref = Sorted(MmJoinTwoPath(ri, ri, counted).counted);
    for (int threads : sweep) {
      MmJoinOptions opts = counted;
      opts.threads = threads;
      EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, opts).counted), cref)
          << "threads=" << threads;
    }
  }
}

// Same property through the JoinProject facade (plan choice + execution),
// with a pinned calibration so the optimizer's decision is deterministic
// and no measurement runs inside the test.
TEST(MmJoin, JoinProjectThreadSweepIsDeterministic) {
  BipartiteSpec spec;
  spec.num_sets = 2500;
  spec.dom_size = 600;
  spec.max_set_size = 20;
  spec.element_skew = 0.8;
  spec.seed = 131;
  BinaryRelation rel = MakeBipartite(spec);

  const MatMulCalibration cal =
      MatMulCalibration::FromFlopsRate(5e10, {1, 2, 4, 8});
  JoinProjectOptions opts;
  opts.sorted = true;
  opts.optimizer.calibration = &cal;
  opts.threads = 1;
  const auto ref = JoinProject::TwoPath(rel, rel, opts);
  for (int threads : {3, HardwareThreads()}) {
    JoinProjectOptions o = opts;
    o.threads = threads;
    const auto got = JoinProject::TwoPath(rel, rel, o);
    EXPECT_EQ(got.pairs, ref.pairs) << "threads=" << threads;
    EXPECT_EQ(got.executed, ref.executed);
  }
}

TEST(MmJoin, InstrumentationIsConsistent) {
  BinaryRelation r = CommunityGraph(3, 20, 1.0, 9);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {5, 5};
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_GE(res.light_seconds, 0.0);
  EXPECT_GE(res.heavy_seconds, 0.0);
  EXPECT_EQ(res.adjusted_thresholds.delta1, 5u);
  EXPECT_GT(res.heavy_rows, 0u);
  EXPECT_GT(res.heavy_cols, 0u);
}

}  // namespace
}  // namespace jpmm
