// QueryService overload behaviour + FailPoint fault injection.
//
// Covers the serving contract end to end: sheds with a structured
// kOverloaded when the admission queue is full, FIFO-admits queued
// requests as slots free, honours deadlines while QUEUED (nothing
// executes), degrades MM plans under the memory cap and under admission
// pressure without changing results, and contains injected faults
// (FailPoints in pool dispatch, CSR build, packing, catalog swap) as
// kInternal while continuing to serve.
//
// The FaultSuite test is the nightly recipe (all sites armed at a small
// probability, many iterations); knobs:
//   JPMM_FAULT_ITERS     iterations (default 25; nightly runs 200)
//   JPMM_FAULT_PROB      per-site trigger probability (default 0.05;
//                        nightly runs 0.01)
//   JPMM_FAULT_ARTIFACT  failing-repro file (default
//                        query_service_fault_failures.txt)
//   JPMM_FAILPOINT_SEED  replays the per-thread fault draws (failpoint.h)

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::Sorted;

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? def : std::atoi(v);
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? def : std::atof(v);
}

std::string FaultArtifactPath() {
  const char* v = std::getenv("JPMM_FAULT_ARTIFACT");
  return (v == nullptr || *v == '\0') ? "query_service_fault_failures.txt" : v;
}

void RecordFailure(const std::string& line) {
  std::FILE* f = std::fopen(FaultArtifactPath().c_str(), "a");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
  }
}

BinaryRelation SmallGraph() {
  return CommunityGraph(/*communities=*/3, /*community_size=*/40,
                        /*p_in=*/0.4, /*seed=*/5);
}

QuerySpec TwoPathSpec(Strategy strategy = Strategy::kAuto) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  spec.strategy = strategy;
  return spec;
}

// Parks the executing worker inside the first delivery until Release(),
// keeping its admission slot occupied — the lever every overload test
// uses to create deterministic contention.
class GateSink : public ResultSink {
 public:
  class Sh : public Shard {
   public:
    explicit Sh(GateSink* parent) : parent_(parent) {}
    void OnPair(const OutPair&) override { parent_->Block(); }
    void OnCountedPair(const CountedPair&) override { parent_->Block(); }
    void OnTuple(std::span<const Value>) override { parent_->Block(); }

   private:
    GateSink* parent_;
  };

  void Open(int num_shards) override {
    shards_.clear();
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Sh>(this));
    }
  }
  Shard& shard(int w) override { return *shards_[static_cast<size_t>(w)]; }
  void Finish() override { shards_.clear(); }

  void Block() {
    std::unique_lock<std::mutex> lk(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return released_; });
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
  std::vector<std::unique_ptr<Sh>> shards_;
};

// ---- Admission control ---------------------------------------------------

TEST(QueryService, ShedsWithStructuredOverloadedWhenQueueFull) {
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QueryServiceOptions so;
  so.max_inflight = 1;
  so.queue_depth = 0;  // no waiting room: the second arrival is shed
  QueryService service(&engine, so);

  GateSink gate;
  QueryStatus first_st = QueryStatus::Ok();
  std::thread t1([&] {
    first_st = service.Run(TwoPathSpec(), gate, ServiceRequest{});
  });
  gate.WaitEntered();

  VectorSink sink;
  QueryStatus st = service.Run(TwoPathSpec(), sink, ServiceRequest{});
  EXPECT_EQ(st.code(), StatusCode::kOverloaded) << st.message();
  EXPECT_EQ(st.queue_depth(), 0u);
  EXPECT_GT(st.retry_after_ms(), 0);
  EXPECT_TRUE(sink.pairs().empty());

  gate.Release();
  t1.join();
  EXPECT_TRUE(first_st.ok()) << first_st.message();
  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.shed, 1u);
  EXPECT_EQ(ss.admitted, 1u);
  EXPECT_EQ(service.inflight(), 0);
}

TEST(QueryService, QueuedRequestsAdmitWhenSlotFreesAndStayExact) {
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  const auto oracle = OracleTwoPath(rel, rel);
  QueryServiceOptions so;
  so.max_inflight = 1;
  so.queue_depth = 4;
  QueryService service(&engine, so);

  GateSink gate;
  QueryStatus gate_st = QueryStatus::Ok();
  std::thread t1([&] {
    gate_st = service.Run(TwoPathSpec(), gate, ServiceRequest{});
  });
  gate.WaitEntered();

  std::vector<QueryStatus> sts(2, QueryStatus::Ok());
  std::vector<std::unique_ptr<VectorSink>> sinks;
  sinks.push_back(std::make_unique<VectorSink>());
  sinks.push_back(std::make_unique<VectorSink>());
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&, i] {
      sts[static_cast<size_t>(i)] =
          service.Run(TwoPathSpec(), *sinks[static_cast<size_t>(i)],
                      ServiceRequest{});
    });
  }
  // Both must be parked in the admission queue, not executing.
  while (service.queued() < 2) std::this_thread::yield();
  EXPECT_EQ(service.inflight(), 1);

  gate.Release();
  t1.join();
  for (auto& t : waiters) t.join();
  EXPECT_TRUE(gate_st.ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(sts[static_cast<size_t>(i)].ok())
        << sts[static_cast<size_t>(i)].message();
    EXPECT_EQ(Sorted(sinks[static_cast<size_t>(i)]->pairs()), oracle)
        << "queued execution " << i << " must stay bit-identical";
  }
  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.admitted, 3u);
  EXPECT_EQ(ss.shed, 0u);
  EXPECT_EQ(ss.max_queue_depth, 2u);
}

TEST(QueryService, DeadlineWhileQueuedReturnsWithoutExecuting) {
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QueryServiceOptions so;
  so.max_inflight = 1;
  so.queue_depth = 4;
  QueryService service(&engine, so);

  GateSink gate;
  QueryStatus gate_st = QueryStatus::Ok();
  std::thread t1([&] {
    gate_st = service.Run(TwoPathSpec(), gate, ServiceRequest{});
  });
  gate.WaitEntered();

  VectorSink sink;
  ServiceRequest req;
  req.deadline_ms = 40;
  ExecStats stats;
  QueryStatus st = service.Run(TwoPathSpec(), sink, req, &stats);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  EXPECT_TRUE(sink.pairs().empty()) << "nothing may execute after a queue "
                                       "timeout";
  EXPECT_EQ(stats.light_chunks_executed, 0u);
  EXPECT_FALSE(stats.interrupted);  // never started, so never truncated

  gate.Release();
  t1.join();
  EXPECT_TRUE(gate_st.ok());
  EXPECT_EQ(service.stats().queue_timeouts, 1u);
  EXPECT_EQ(service.queued(), 0u);
}

TEST(QueryService, ExplicitCancelWhileQueued) {
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QueryServiceOptions so;
  so.max_inflight = 1;
  so.queue_depth = 4;
  QueryService service(&engine, so);

  GateSink gate;
  std::thread t1([&] { service.Run(TwoPathSpec(), gate, ServiceRequest{}); });
  gate.WaitEntered();

  CancelToken token;
  ServiceRequest req;
  req.exec.cancel = &token;
  VectorSink sink;
  QueryStatus st = QueryStatus::Ok();
  std::thread t2([&] { st = service.Run(TwoPathSpec(), sink, req); });
  while (service.queued() < 1) std::this_thread::yield();
  token.RequestCancel();
  t2.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.message();
  EXPECT_TRUE(sink.pairs().empty());

  gate.Release();
  t1.join();
}

// ---- Graceful degradation ------------------------------------------------

TEST(QueryService, DegradesMmUnderMemoryCapAndStaysExact) {
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  const auto oracle = OracleTwoPath(rel, rel);
  QueryServiceOptions so;
  so.memory_budget_bytes = 1 << 20;
  so.min_mm_bytes = uint64_t{1} << 30;  // share always below the MM floor
  QueryService service(&engine, so);

  VectorSink sink;
  ExecStats stats;
  QueryStatus st = service.Run(TwoPathSpec(Strategy::kMmJoin), sink,
                               ServiceRequest{}, &stats);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.degrade_reason, DegradeReason::kMemoryCap);
  EXPECT_EQ(stats.executed, Strategy::kNonMmJoin)
      << "the degraded run must actually take the combinatorial path";
  EXPECT_EQ(Sorted(sink.pairs()), oracle)
      << "degradation trades speed, never correctness";
  EXPECT_EQ(service.stats().degraded, 1u);
}

TEST(QueryService, DegradesUnderAdmissionPressureAndStaysExact) {
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  const auto oracle = OracleTwoPath(rel, rel);
  QueryServiceOptions so;
  so.max_inflight = 1;
  so.queue_depth = 8;
  so.degrade_queue_threshold = 1;  // any backlog at admit time degrades
  QueryService service(&engine, so);

  GateSink gate;
  std::thread t1([&] { service.Run(TwoPathSpec(), gate, ServiceRequest{}); });
  gate.WaitEntered();

  std::vector<std::unique_ptr<VectorSink>> sinks;
  std::vector<QueryStatus> sts(2, QueryStatus::Ok());
  std::vector<std::thread> waiters;
  sinks.push_back(std::make_unique<VectorSink>());
  sinks.push_back(std::make_unique<VectorSink>());
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&, i] {
      sts[static_cast<size_t>(i)] = service.Run(
          TwoPathSpec(Strategy::kMmJoin), *sinks[static_cast<size_t>(i)],
          ServiceRequest{});
    });
  }
  while (service.queued() < 2) std::this_thread::yield();
  gate.Release();
  t1.join();
  for (auto& t : waiters) t.join();

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(sts[static_cast<size_t>(i)].ok());
    EXPECT_EQ(Sorted(sinks[static_cast<size_t>(i)]->pairs()), oracle);
  }
  // The first drained waiter saw the other one still queued, so at least
  // one execution degraded under admission pressure.
  EXPECT_GE(service.stats().degraded, 1u);
}

// ---- Retry helper --------------------------------------------------------

TEST(QueryService, RetryWithBackoffRetriesOnlyOverloaded) {
  int calls = 0;
  RetryOptions ro;
  ro.max_attempts = 5;
  ro.base_ms = 1;
  ro.max_ms = 2;
  QueryStatus st = RetryWithBackoff(
      [&] {
        ++calls;
        if (calls < 3) return QueryStatus::Overloaded("full", 4, 1);
        return QueryStatus::Ok();
      },
      ro);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  st = RetryWithBackoff(
      [&] {
        ++calls;
        return QueryStatus::InvalidArgument("bad");
      },
      ro);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1) << "non-overloaded outcomes must not retry";

  calls = 0;
  st = RetryWithBackoff(
      [&] {
        ++calls;
        return QueryStatus::Overloaded("still full", 9, 1);
      },
      ro);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_EQ(st.queue_depth(), 9u) << "the last rejection surfaces verbatim";
  EXPECT_EQ(calls, 5);

  CancelToken token;
  token.RequestCancel();
  calls = 0;
  st = RetryWithBackoff(
      [&] {
        ++calls;
        return QueryStatus::Ok();
      },
      ro, &token);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 0) << "a fired token aborts before the first attempt";
}

// ---- FailPoint containment -----------------------------------------------

struct FailPointGuard {
  ~FailPointGuard() { FailPoints::DeactivateAll(); }
};

TEST(QueryServiceFault, CatalogPutHasStrongExceptionSafety) {
  FailPointGuard guard;
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  FailPoints::Activate("catalog.put", FailPoints::Action::kThrow, 1.0);
  EXPECT_THROW(engine.catalog().Put("R", rel), FailPointError);
  EXPECT_EQ(FailPoints::TriggerCount("catalog.put"), 1u);
  EXPECT_EQ(engine.catalog().IndexSnapshot("R"), nullptr)
      << "a failed Put must not install the entry";
  FailPoints::Deactivate("catalog.put");
  engine.catalog().Put("R", rel);
  EXPECT_NE(engine.catalog().IndexSnapshot("R"), nullptr);
}

TEST(QueryServiceFault, InjectedThrowBecomesInternalAndServiceRecovers) {
  FailPointGuard guard;
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  const auto oracle = OracleTwoPath(rel, rel);
  QueryService service(&engine, {});

  // Prepare outside the fault window so each site is exercised against
  // execution (Prepare-time faults are contained too, via Run).
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kMmJoin), &q).ok());

  ServiceRequest req;
  req.exec.threads = 3;
  req.exec.thresholds = Thresholds{1, 1};  // force a real heavy part
  req.exec.heavy_path = HeavyPathMode::kForceDense;  // exercise packing

  uint64_t internal_before = 0;
  for (const char* site : {"pool.dispatch", "csr.build", "matmul.pack"}) {
    FailPoints::Activate(site, FailPoints::Action::kThrow, 1.0);
    VectorSink sink;
    QueryStatus st = service.Execute(q, sink, req);
    EXPECT_EQ(st.code(), StatusCode::kInternal) << site << ": " << st.message();
    EXPECT_GT(FailPoints::TriggerCount(site), 0u) << site;
    FailPoints::Deactivate(site);

    const ServiceStats ss = service.stats();
    EXPECT_EQ(ss.internal_errors, internal_before + 1) << site;
    internal_before = ss.internal_errors;
    EXPECT_EQ(service.inflight(), 0)
        << site << ": the slot must be released on the exception path";

    // The very next query must succeed, bit-identically.
    VectorSink ok_sink;
    st = service.Execute(q, ok_sink, req);
    ASSERT_TRUE(st.ok()) << site << " aftermath: " << st.message();
    EXPECT_EQ(Sorted(ok_sink.pairs()), oracle) << site;
  }
}

TEST(QueryServiceFault, SleepFailPointDelaysButStaysCorrect) {
  FailPointGuard guard;
  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  const auto oracle = OracleTwoPath(rel, rel);
  QueryService service(&engine, {});

  FailPoints::Activate("pool.dispatch", FailPoints::Action::kSleep, 0.5,
                       /*sleep_ms=*/1);
  ServiceRequest req;
  req.exec.threads = 3;
  VectorSink sink;
  QueryStatus st = service.Run(TwoPathSpec(), sink, req);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(Sorted(sink.pairs()), oracle)
      << "a slow path is still an exact path";
}

// ---- FaultSuite: the nightly randomized recipe ---------------------------
//
// Every site armed at a small probability, many iterations, concurrent
// clients: each query must end Ok (bit-identical), explicitly interrupted,
// or kInternal — never wrong, never a deadlock, never a wedged service.

TEST(QueryServiceFault, FaultSuite) {
  FailPointGuard guard;
  const int iters = EnvInt("JPMM_FAULT_ITERS", 25);
  const double prob = EnvDouble("JPMM_FAULT_PROB", 0.05);

  const BinaryRelation rel = SmallGraph();
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  const auto oracle = OracleTwoPath(rel, rel);
  QueryServiceOptions so;
  so.max_inflight = 2;
  so.queue_depth = 4;
  QueryService service(&engine, so);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kMmJoin), &q).ok());

  for (const char* site :
       {"pool.dispatch", "csr.build", "matmul.pack", "catalog.put"}) {
    FailPoints::Activate(site, FailPoints::Action::kThrow, prob);
  }

  std::atomic<int> wrong{0};
  std::atomic<uint64_t> ok_runs{0}, internal_runs{0}, other_runs{0};
  const int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServiceRequest req;
      req.exec.threads = 2;
      req.exec.thresholds = Thresholds{1, 1};
      for (int i = 0; i < iters; ++i) {
        VectorSink sink;
        QueryStatus st = service.Execute(q, sink, req);
        switch (st.code()) {
          case StatusCode::kOk:
            ok_runs.fetch_add(1, std::memory_order_relaxed);
            if (Sorted(sink.pairs()) != oracle) {
              wrong.fetch_add(1, std::memory_order_relaxed);
              RecordFailure("FaultSuite wrong-result client=" +
                            std::to_string(c) + " iter=" + std::to_string(i) +
                            " prob=" + std::to_string(prob));
            }
            break;
          case StatusCode::kInternal:
            internal_runs.fetch_add(1, std::memory_order_relaxed);
            break;
          case StatusCode::kOverloaded:
            other_runs.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            other_runs.fetch_add(1, std::memory_order_relaxed);
            RecordFailure("FaultSuite unexpected-status client=" +
                          std::to_string(c) + " iter=" + std::to_string(i) +
                          " status=" + StatusCodeName(st.code()) + " msg=" +
                          st.message());
            wrong.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        // The catalog swap site: a failed Put must leave the served
        // relation fully readable.
        if (i % 8 == c) {
          try {
            engine.catalog().Put("scratch", rel);
          } catch (const FailPointError&) {
            // contained; the serving name must be unaffected
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  FailPoints::DeactivateAll();

  EXPECT_EQ(wrong.load(), 0)
      << "see " << FaultArtifactPath() << " for repro lines";
  EXPECT_EQ(service.inflight(), 0) << "no leaked admission slots";
  // Sanity: the suite exercised both the happy and the faulty path (with
  // default knobs; a probability of 0 legitimately yields no faults).
  if (prob > 0.0 && iters * kClients >= 50) {
    EXPECT_GT(ok_runs.load() + internal_runs.load(), 0u);
  }
  // After the storm: service still serves, exactly.
  VectorSink sink;
  ServiceRequest req;
  QueryStatus st = service.Execute(q, sink, req);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(Sorted(sink.pairs()), oracle);
}

}  // namespace
}  // namespace jpmm
