// Multi-query batching subsystem: FanoutSink / RecordingSink delivery,
// Catalog::SnapshotAll consistent cuts, the QueryBatcher group protocol
// under 64 mixed clients with hot-swap writers, the versioned result
// cache's staleness contract, and density-grid memo reuse.
//
// This binary is part of the CI ThreadSanitizer matrix; keep new
// cross-thread batching state covered here. Threading discipline matches
// query_engine_concurrent_test: worker threads record failures into
// per-thread slots, the main thread asserts after join.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/join_project.h"
#include "core/query_batcher.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::Sorted;

constexpr int kClients = 64;  // acceptance floor for the big scenario

BinaryRelation SkewedGraph(uint64_t seed = 11) {
  return CommunityGraph(/*communities=*/3, /*community_size=*/30,
                        /*p_in=*/0.35, seed);
}

std::vector<OutPair> Oracle(const BinaryRelation& rel) {
  JoinProjectOptions opts;
  opts.strategy = Strategy::kWcojFull;
  opts.threads = 1;
  opts.sorted = true;
  return JoinProject::TwoPath(rel, rel, opts).pairs;
}

std::vector<CountedPair> OracleCounted(const BinaryRelation& rel) {
  JoinProjectOptions opts;
  opts.strategy = Strategy::kWcojFull;
  opts.threads = 1;
  opts.sorted = true;
  opts.count_witnesses = true;
  return JoinProject::TwoPath(rel, rel, opts).counted;
}

QuerySpec TwoPathSpec(const std::string& name, bool counted = false) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {name};
  spec.count_witnesses = counted;
  return spec;
}

struct FailureLog {
  explicit FailureLog(size_t threads) : slots(threads) {}
  std::vector<std::string> slots;
  void Record(size_t thread, const std::string& msg) {
    if (slots[thread].empty()) slots[thread] = msg;
  }
  void AssertClean() const {
    for (size_t i = 0; i < slots.size(); ++i) {
      EXPECT_TRUE(slots[i].empty()) << "thread " << i << ": " << slots[i];
    }
  }
};

// ---- FanoutSink: one stream, N independent consumers ---------------------

TEST(FanoutSink, TargetsKeepIndependentSemantics) {
  VectorSink all;
  LimitSink limited(3);
  CountOnlySink counter;
  VectorSink tap;
  FanoutSink fan;
  fan.AddTarget(&all);
  fan.AddTarget(&limited);
  fan.AddTarget(&counter);
  fan.AddTap(&tap);

  EXPECT_FALSE(fan.done());
  EXPECT_TRUE(fan.may_finish_early() == false)
      << "VectorSink cannot finish early, so neither can the group";

  fan.Open(2);
  std::vector<OutPair> batch;
  for (Value v = 0; v < 10; ++v) batch.push_back({v, v + 100});
  fan.shard(0).OnPairs(std::span<const OutPair>(batch.data(), 6));
  for (size_t i = 6; i < batch.size(); ++i) fan.shard(1).OnPair(batch[i]);
  // The limit target is done after its 3; the fan-out keeps streaming to
  // the rest and only reports done() when EVERY target is satisfied.
  EXPECT_TRUE(limited.done());
  EXPECT_FALSE(fan.done());
  fan.Finish();

  EXPECT_EQ(all.pairs().size(), 10u);
  EXPECT_EQ(limited.pairs().size(), 3u);
  EXPECT_EQ(counter.count(), 10u);
  EXPECT_EQ(tap.pairs().size(), 10u) << "taps receive everything";
  EXPECT_EQ(Sorted(all.pairs()), Sorted(tap.pairs()));
  for (const OutPair& p : limited.pairs()) {
    EXPECT_EQ(p.z, p.x + 100) << "limit target received real results only";
  }
  EXPECT_GE(fan.results_forwarded(), 10u + 3u + 10u);
}

TEST(FanoutSink, DoneIsConjunctionOverEarlyFinishers) {
  LimitSink a(2), b(5);
  FanoutSink fan;
  fan.AddTarget(&a);
  fan.AddTarget(&b);
  EXPECT_TRUE(fan.may_finish_early());
  fan.Open(1);
  // Scalar OnPair calls are buffered inside the fan shard (flushed as
  // spans), so the done() vote advances at chunk granularity — deliver via
  // bulk spans here, the way the engine's chunk loops do.
  const std::vector<OutPair> first = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  fan.shard(0).OnPairs(first);
  EXPECT_TRUE(a.done());
  EXPECT_FALSE(fan.done()) << "one satisfied client must not stop the pass";
  const std::vector<OutPair> second = {{4, 4}};
  fan.shard(0).OnPairs(second);
  EXPECT_TRUE(fan.done()) << "every client satisfied -> shared early exit";
  fan.Finish();
  EXPECT_EQ(a.pairs().size(), 2u);
  EXPECT_EQ(b.pairs().size(), 5u);
}

TEST(RecordingSink, CapturesUntilByteBudgetThenLatchesOverflow) {
  RecordingSink small(3 * sizeof(OutPair));
  small.Open(1);
  for (Value v = 0; v < 10; ++v) small.shard(0).OnPair({v, v});
  small.Finish();
  EXPECT_TRUE(small.overflowed());
  EXPECT_LE(small.pairs().size(), 3u);

  RecordingSink big(1 << 20);
  big.Open(2);
  big.shard(0).OnPair({1, 2});
  big.shard(1).OnCountedPair({3, 4, 7});
  big.Finish();
  EXPECT_FALSE(big.overflowed());
  ASSERT_EQ(big.pairs().size(), 1u);
  ASSERT_EQ(big.counted().size(), 1u);
  EXPECT_EQ(big.counted()[0].count, 7u);
}

// ---- Catalog::SnapshotAll: one consistent multi-relation cut -------------

TEST(SnapshotAll, PinsEveryRelationAtOneVersion) {
  Catalog catalog;
  catalog.Put("A", SkewedGraph(1));
  catalog.Put("B", SkewedGraph(2));

  std::vector<std::shared_ptr<const IndexedRelation>> snaps;
  uint64_t version = 0;
  std::string missing;
  ASSERT_TRUE(catalog.SnapshotAll({"A", "B"}, &snaps, &version, &missing));
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(version, catalog.version());

  // Replacing and dropping after the snapshot must not disturb it.
  const size_t a_edges = snaps[0]->num_tuples();
  catalog.Put("A", SkewedGraph(3));
  ASSERT_TRUE(catalog.Drop("B"));
  EXPECT_EQ(snaps[0]->num_tuples(), a_edges);
  EXPECT_GT(catalog.version(), version) << "writers must bump the version";

  snaps.clear();
  EXPECT_FALSE(catalog.SnapshotAll({"A", "B"}, &snaps, &version, &missing));
  EXPECT_EQ(missing, "B");
  EXPECT_TRUE(snaps.empty());
}

TEST(SnapshotAll, PreparedVersionIdentifiesTheCut) {
  QueryEngine engine;
  engine.AddRelation("R", SkewedGraph(5));
  PreparedQuery q1, q2, q3;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q1).ok());
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q2).ok());
  EXPECT_EQ(q1.prepared_version(), q2.prepared_version());
  EXPECT_EQ(q1.spec_fingerprint(), q2.spec_fingerprint());

  engine.AddRelation("R", SkewedGraph(6));
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q3).ok());
  EXPECT_NE(q3.prepared_version(), q1.prepared_version())
      << "a Put must move new Prepares onto a new version";
  EXPECT_EQ(q3.spec_fingerprint(), q1.spec_fingerprint())
      << "the fingerprint hashes the spec, not the data";
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R", true), &q3).ok());
  EXPECT_NE(q3.spec_fingerprint(), q1.spec_fingerprint())
      << "counted mode is a WHAT-field and must change the fingerprint";
}

// ---- The batching acceptance scenario: 64 clients, one shared prepared
// query, every result byte-identical to solo, exactly one leader per group.

TEST(QueryBatching, SixtyFourIdenticalClientsShareExecutions) {
  const BinaryRelation rel = SkewedGraph(11);
  const auto oracle = Oracle(rel);
  QueryEngine engine;
  engine.AddRelation("R", rel);
  QueryServiceOptions so;
  so.enable_batching = true;
  so.batch_window_ms = 100;  // generous: most clients join the first group
  QueryService service(&engine, so);

  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  SetMetricsEnabled(true);  // the aggregate leader/follower identity below
                            // reads the process-wide batch counters
  MetricsRegistry::Global().ResetForTest();
  FailureLog log(kClients);
  std::vector<ExecStats> stats(kClients);
  std::atomic<int> gate{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      gate.fetch_add(1);
      while (gate.load() < kClients) {
      }
      VectorSink sink;
      ServiceRequest req;
      QueryStatus st = service.Execute(q, sink, req, &stats[c]);
      if (!st.ok()) {
        log.Record(c, st.message());
        return;
      }
      if (Sorted(sink.pairs()) != oracle) {
        log.Record(c, "batched result differs from the solo oracle");
      }
    });
  }
  for (auto& t : threads) t.join();
  log.AssertClean();

  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.completed, static_cast<uint64_t>(kClients));
  EXPECT_EQ(ss.admitted, static_cast<uint64_t>(kClients));

  // Exactly one leader per group, in aggregate: every request was either
  // the execution of its group or a follower of one.
  const auto snap = MetricsRegistry::Global().Snapshot();
  auto counter = [&snap](const char* name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const uint64_t leader_execs = counter("jpmm_batch_leader_executions_total");
  const uint64_t follower_joins = counter("jpmm_batch_follower_joins_total");
  EXPECT_EQ(leader_execs + follower_joins, static_cast<uint64_t>(kClients));
  EXPECT_EQ(ss.batch_followers, follower_joins);
  EXPECT_GT(follower_joins, 0u)
      << "with a 100ms window and a start gate, coalescing must happen";
  EXPECT_EQ(q.executions(), leader_execs)
      << "the engine ran once per group, never once per client";
  EXPECT_LT(leader_execs, static_cast<uint64_t>(kClients));
}

// Followers keep their own delivery semantics: a limit client coalesced
// with materializing clients gets exactly its page, everyone else gets the
// full answer, and the shared pass never early-exits for the limit client.

TEST(QueryBatching, CoalescedClientsKeepIndependentSinkSemantics) {
  const BinaryRelation rel = SkewedGraph(17);
  const auto oracle = Oracle(rel);
  ASSERT_GT(oracle.size(), 8u) << "test premise";
  QueryEngine engine;
  engine.AddRelation("R", rel);
  QueryServiceOptions so;
  so.enable_batching = true;
  so.batch_window_ms = 150;
  QueryService service(&engine, so);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  FailureLog log(3);
  std::atomic<int> gate{0};
  std::vector<std::thread> threads;
  // Client 0: full materialization; client 1: limit 5; client 2: count.
  VectorSink full;
  LimitSink limited(5);
  CountOnlySink counting;
  ResultSink* sinks[3] = {&full, &limited, &counting};
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      gate.fetch_add(1);
      while (gate.load() < 3) {
      }
      ServiceRequest req;
      QueryStatus st = service.Execute(q, *sinks[c], req);
      if (!st.ok()) log.Record(c, st.message());
    });
  }
  for (auto& t : threads) t.join();
  log.AssertClean();

  // Whether or not all three landed in one group (timing), the semantics
  // must hold per client — coalescing may only change WHO executed.
  EXPECT_EQ(Sorted(full.pairs()), oracle);
  EXPECT_EQ(limited.pairs().size(), std::min<size_t>(5, oracle.size()));
  std::set<std::pair<Value, Value>> oracle_set;
  for (const OutPair& p : oracle) oracle_set.insert({p.x, p.z});
  for (const OutPair& p : limited.pairs()) {
    EXPECT_EQ(oracle_set.count({p.x, p.z}), 1u)
        << "limit client received a non-result";
  }
  EXPECT_EQ(counting.count(), oracle.size());
}

// A leader whose deadline fires inside the batch window detaches without
// executing; the request maps to kDeadlineExceeded and queue_timeouts.

TEST(QueryBatching, DeadlineInsideWindowDetachesWithoutExecuting) {
  QueryEngine engine;
  engine.AddRelation("R", SkewedGraph(19));
  QueryServiceOptions so;
  so.enable_batching = true;
  so.batch_window_ms = 400;
  QueryService service(&engine, so);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  VectorSink sink;
  ServiceRequest req;
  req.deadline_ms = 5;  // fires long before the 400ms window closes
  ExecStats stats;
  const QueryStatus st = service.Execute(q, sink, req, &stats);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  EXPECT_TRUE(sink.pairs().empty()) << "nothing executed";
  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.queue_timeouts, 1u);
  EXPECT_EQ(ss.admitted, 0u) << "a detached request never admits";
  EXPECT_EQ(q.executions(), 0u);
}

// ---- The big mixed scenario: 64 threads, identical AND distinct specs,
// hot-swap writers, batching + cache on; every result equals its oracle.

TEST(QueryBatching, MixedSpecsWithHotSwapWritersStayExact) {
  const BinaryRelation stable = SkewedGraph(23);
  const BinaryRelation hot = SkewedGraph(29);
  const auto oracle = Oracle(stable);
  const auto oracle_counted = OracleCounted(stable);
  const auto hot_oracle = Oracle(hot);

  QueryEngine engine;
  engine.AddRelation("R", stable);
  engine.AddRelation("hot", hot);
  QueryServiceOptions so;
  so.enable_batching = true;
  so.batch_window_ms = 2;
  so.enable_result_cache = true;
  so.max_inflight = 4;
  so.queue_depth = kClients;  // no shedding: every result gets checked
  so.max_queued_per_class = kClients;
  QueryService service(&engine, so);

  constexpr int kWriters = 2;
  constexpr int kReaders = kClients - kWriters;
  constexpr int kIters = 6;
  FailureLog log(kClients);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> checked{0};

  for (int c = 0; c < kReaders; ++c) {
    threads.emplace_back([&, c] {
      for (int it = 0; it < kIters; ++it) {
        switch ((c + it) % 3) {
          case 0: {  // identical hot spec under concurrent re-Put: any
                     // snapshot of identical content gives one oracle, and
                     // the version-keyed cache can never serve a stale cut.
            PreparedQuery q;
            QueryStatus st = engine.Prepare(TwoPathSpec("hot"), &q);
            if (!st.ok()) {
              log.Record(c, "Prepare hot: " + st.message());
              return;
            }
            VectorSink sink;
            st = service.Execute(q, sink, {});
            if (!st.ok() || Sorted(sink.pairs()) != hot_oracle) {
              log.Record(c, "hot result mismatch: " + st.message());
              return;
            }
            break;
          }
          case 1: {  // shared stable spec — the heavily coalesced stream
            PreparedQuery q;
            QueryStatus st = engine.Prepare(TwoPathSpec("R"), &q);
            if (!st.ok()) {
              log.Record(c, "Prepare R: " + st.message());
              return;
            }
            VectorSink sink;
            st = service.Execute(q, sink, {});
            if (!st.ok() || Sorted(sink.pairs()) != oracle) {
              log.Record(c, "stable result mismatch: " + st.message());
              return;
            }
            break;
          }
          default: {  // distinct spec (counted) — must never coalesce with
                      // the plain one (different fingerprint)
            PreparedQuery q;
            QueryStatus st = engine.Prepare(TwoPathSpec("R", true), &q);
            if (!st.ok()) {
              log.Record(c, "Prepare counted: " + st.message());
              return;
            }
            VectorSink sink;
            st = service.Execute(q, sink, {});
            if (!st.ok() || Sorted(sink.counted()) != oracle_counted) {
              log.Record(c, "counted result mismatch: " + st.message());
              return;
            }
            break;
          }
        }
        checked.fetch_add(1);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    const int slot = kReaders + w;
    threads.emplace_back([&, slot] {
      for (int it = 0; it < kIters * 3; ++it) {
        if (!engine.AddRelation("hot", hot).ok()) {
          log.Record(slot, "AddRelation hot failed");
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (auto& t : threads) t.join();
  log.AssertClean();
  EXPECT_EQ(checked.load(), static_cast<uint64_t>(kReaders * kIters));
  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.completed, static_cast<uint64_t>(kReaders * kIters))
      << ss.ToString();
  EXPECT_GE(ss.admitted, ss.completed);
}

// ---- Result cache: repeat requests replay, writers invalidate ------------

TEST(ResultCacheService, RepeatRequestsHitUntilTheCatalogMoves) {
  const BinaryRelation before = SkewedGraph(31);
  const BinaryRelation after = SkewedGraph(37);
  const auto oracle_before = Oracle(before);
  const auto oracle_after = Oracle(after);
  ASSERT_NE(oracle_before, oracle_after) << "test premise";

  QueryEngine engine;
  engine.AddRelation("R", before);
  QueryServiceOptions so;
  so.enable_result_cache = true;  // cache without batching is valid
  QueryService service(&engine, so);

  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  VectorSink first;
  ExecStats s1;
  ASSERT_TRUE(service.Execute(q, first, {}, &s1).ok());
  EXPECT_FALSE(s1.result_cache_hit);
  EXPECT_EQ(Sorted(first.pairs()), oracle_before);

  VectorSink second;
  ExecStats s2;
  ASSERT_TRUE(service.Execute(q, second, {}, &s2).ok());
  EXPECT_TRUE(s2.result_cache_hit) << "identical repeat must replay";
  EXPECT_EQ(Sorted(second.pairs()), oracle_before);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(q.executions(), 1u) << "the hit never reached the engine";

  // A cached replay honours a limit client's semantics.
  LimitSink page(4);
  ExecStats s3;
  ASSERT_TRUE(service.Execute(q, page, {}, &s3).ok());
  EXPECT_TRUE(s3.result_cache_hit);
  EXPECT_EQ(page.pairs().size(), std::min<size_t>(4, oracle_before.size()));

  // Writer replaces R: new Prepares carry a new version, so the stale
  // entry is unreachable — the fresh query re-executes and sees new data.
  engine.AddRelation("R", after);
  PreparedQuery q2;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q2).ok());
  VectorSink fresh;
  ExecStats s4;
  ASSERT_TRUE(service.Execute(q2, fresh, {}, &s4).ok());
  EXPECT_FALSE(s4.result_cache_hit)
      << "the cache must never serve a pre-Put result to a new version";
  EXPECT_EQ(Sorted(fresh.pairs()), oracle_after);

  // The OLD prepared query still evaluates its own snapshot (the old
  // version's entry was swept, so it re-executes — exact, not stale-served).
  VectorSink old_snapshot;
  ExecStats s5;
  ASSERT_TRUE(service.Execute(q, old_snapshot, {}, &s5).ok());
  EXPECT_EQ(Sorted(old_snapshot.pairs()), oracle_before)
      << "snapshot isolation holds with the cache in the path";

  // And the new version now caches normally.
  VectorSink fresh2;
  ExecStats s6;
  ASSERT_TRUE(service.Execute(q2, fresh2, {}, &s6).ok());
  EXPECT_TRUE(s6.result_cache_hit);
  EXPECT_EQ(Sorted(fresh2.pairs()), oracle_after);
}

TEST(ResultCacheService, InterruptedAndTruncatedRunsAreNeverCached) {
  QueryEngine engine;
  engine.AddRelation("R", SkewedGraph(41));
  const auto oracle = Oracle(SkewedGraph(41));
  QueryServiceOptions so;
  so.enable_result_cache = true;
  QueryService service(&engine, so);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec("R"), &q).ok());

  // A limit-driven run short-circuits (skips work) — must not be inserted,
  // or the next full client would replay a prefix as the whole answer.
  LimitSink limited(1);
  ASSERT_TRUE(service.Execute(q, limited, {}).ok());
  VectorSink full;
  ExecStats stats;
  ASSERT_TRUE(service.Execute(q, full, {}, &stats).ok());
  EXPECT_EQ(Sorted(full.pairs()), oracle)
      << "full client after a limit client must see the full answer";
  EXPECT_EQ(Sorted(full.pairs()).size(), oracle.size());
}

TEST(ResultCacheUnit, LruEvictsAndInvalidationSweeps) {
  ResultCache::Options co;
  co.max_bytes = 3000;
  co.max_entry_bytes = 2000;
  ResultCache cache(co);

  auto make_entry = [](size_t pairs) {
    ResultCache::Entry e;
    e.pairs.resize(pairs);
    for (size_t i = 0; i < pairs; ++i)
      e.pairs[i] = {static_cast<Value>(i), static_cast<Value>(i)};
    return e;
  };
  // ~256 fixed + pairs bytes each; three ~1k entries exceed 3000.
  cache.Insert({7, 1}, make_entry(100));
  cache.Insert({7, 2}, make_entry(100));
  EXPECT_EQ(cache.entries(), 2u);
  cache.Insert({7, 3}, make_entry(100));
  EXPECT_LT(cache.entries(), 3u) << "byte cap must evict the LRU tail";

  // Oversized entries are rejected outright.
  cache.Insert({7, 4}, make_entry(1000));
  VectorSink sink;
  ExecStats stats;
  EXPECT_FALSE(cache.Replay({7, 4}, sink, &stats, nullptr, -1));

  // Version sweep: entries from other catalog versions are dropped.
  const size_t live_before = cache.entries();
  ASSERT_GT(live_before, 0u);
  cache.InvalidateStale(8);
  EXPECT_EQ(cache.entries(), 0u);
  cache.Insert({8, 1}, make_entry(10));
  cache.InvalidateStale(8);  // same version: no-op
  EXPECT_EQ(cache.entries(), 1u);
}

// ---- Satellite: density-grid remap reuse across executions ---------------

TEST(DensityGridReuse, SecondExecutionHitsThePartitionMemo) {
  QueryEngine engine;
  engine.AddRelation("R", SkewedGraph(43));
  const auto oracle = Oracle(SkewedGraph(43));
  QuerySpec spec = TwoPathSpec("R");
  spec.strategy = Strategy::kMmJoin;  // guarantee the heavy product runs
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(spec, &q).ok());

  ExecOptions exec;
  exec.thresholds = Thresholds{1, 1};  // everything heavy: grid engages
  exec.partition = PartitionMode::kForce;

  VectorSink s1;
  ExecStats st1;
  ASSERT_TRUE(engine.Execute(q, s1, exec, &st1).ok());
  ASSERT_TRUE(st1.partition_used) << "test premise: the grid must run";
  EXPECT_FALSE(st1.partition_cache_hit) << "first run builds the remap";

  VectorSink s2;
  ExecStats st2;
  ASSERT_TRUE(engine.Execute(q, s2, exec, &st2).ok());
  EXPECT_TRUE(st2.partition_cache_hit)
      << "same thresholds + gates on the same snapshots must reuse the grid";
  EXPECT_EQ(st2.partition_signature, st1.partition_signature);
  EXPECT_EQ(Sorted(s1.pairs()), oracle);
  EXPECT_EQ(Sorted(s2.pairs()), oracle) << "memo reuse must not change results";

  // A different execution key (row-block shape via thresholds) must miss.
  ExecOptions other = exec;
  other.thresholds = Thresholds{2, 4};
  VectorSink s3;
  ExecStats st3;
  ASSERT_TRUE(engine.Execute(q, s3, other, &st3).ok());
  if (st3.partition_used) {
    EXPECT_FALSE(st3.partition_cache_hit)
        << "changed thresholds must not reuse a mismatched grid";
  }
  EXPECT_EQ(Sorted(s3.pairs()), oracle);
}

}  // namespace
}  // namespace jpmm
