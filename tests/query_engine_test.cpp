// QueryEngine facade + ResultSink semantics: limit early exit mid product
// block on every strategy, cross-thread-count determinism, TopKByCountSink
// against a full-sort oracle, PreparedQuery reuse (plan-cache hits must
// not change results), and structured validation errors instead of aborts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "core/join_project.h"
#include "core/mm_join.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "scj/mm_scj.h"
#include "ssj/mm_ssj.h"
#include "storage/set_family.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::Sorted;

// A skewed graph whose two-path join has a real heavy part under small
// thresholds (four dense communities). Small enough for the O(|R|^2)
// brute-force oracle; tests that need several product blocks shrink
// row_block instead of growing the graph.
BinaryRelation SkewedGraph() {
  return CommunityGraph(/*communities=*/4, /*community_size=*/60,
                        /*p_in=*/0.5, /*seed=*/11);
}

QueryEngine MakeEngine(const BinaryRelation& rel) {
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  return engine;
}

QuerySpec TwoPathSpec(Strategy strategy) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  spec.strategy = strategy;
  return spec;
}

std::vector<OutPair> EngineAllPairs(QueryEngine* engine,
                                    const QuerySpec& spec,
                                    const ExecOptions& exec) {
  PreparedQuery q;
  auto st = engine->Prepare(spec, &q);
  EXPECT_TRUE(st.ok()) << st.message();
  VectorSink sink;
  st = engine->Execute(q, sink, exec);
  EXPECT_TRUE(st.ok()) << st.message();
  return Sorted(sink.pairs());
}

// ---- VectorSink back-compat: the engine + VectorSink must reproduce the
// pre-redesign facade results exactly, for every strategy.

TEST(QueryEngine, VectorSinkMatchesOldFacade) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  for (Strategy s : {Strategy::kAuto, Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    JoinProjectOptions old_opts;
    old_opts.strategy = s;
    auto old_out = JoinProject::TwoPath(rel, rel, old_opts);
    auto new_pairs = EngineAllPairs(&engine, TwoPathSpec(s), {});
    EXPECT_EQ(new_pairs, Sorted(old_out.pairs)) << StrategyName(s);
  }
}

// ---- Limit semantics: exactly min(k, |OUT|) pairs, every one a real
// output pair, on every strategy and thread count.

TEST(QueryEngine, LimitSinkEveryStrategy) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : oracle) full.insert({p.x, p.z});

  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    for (int threads : {1, 3}) {
      PreparedQuery q;
      auto st = engine.Prepare(TwoPathSpec(s), &q);
      ASSERT_TRUE(st.ok()) << st.message();
      LimitSink sink(37);
      ExecOptions exec;
      exec.threads = threads;
      st = engine.Execute(q, sink, exec);
      ASSERT_TRUE(st.ok()) << st.message();
      EXPECT_EQ(sink.pairs().size(), std::min<size_t>(37, full.size()))
          << StrategyName(s) << " threads=" << threads;
      for (const OutPair& p : sink.pairs()) {
        EXPECT_TRUE(full.count({p.x, p.z})) << StrategyName(s);
      }
    }
  }
}

TEST(QueryEngine, LimitLargerThanOutputDeliversEverything) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  LimitSink sink(oracle.size() + 1000);
  auto st = engine.Run(TwoPathSpec(Strategy::kAuto), sink, {});
  ASSERT_TRUE(st.ok()) << st.message();
  auto got = sink.pairs();
  EXPECT_EQ(Sorted(got), oracle);
}

// The core acceptance property: a small limit on a heavy-part query stops
// mid product pass — some planned blocks are never executed.

TEST(QueryEngine, LimitSkipsHeavyProductBlocks) {
  const BinaryRelation rel = SkewedGraph();
  IndexedRelation idx(rel);

  // Thresholds {1, 1}: everything is heavy, so the output comes from the
  // product blocks alone (240 heavy rows = 4 blocks of 64).
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.row_block = 64;
  LimitSink sink(5);
  opts.sink = &sink;
  auto res = MmJoinTwoPath(idx, idx, opts);
  EXPECT_GE(res.heavy_blocks_total, 2u);
  EXPECT_GT(res.heavy_blocks_skipped, 0u);
  EXPECT_LT(res.heavy_blocks_executed, res.heavy_blocks_total);
  EXPECT_EQ(res.heavy_blocks_executed + res.heavy_blocks_skipped,
            res.heavy_blocks_total);
  EXPECT_EQ(sink.pairs().size(), 5u);

  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : OracleTwoPath(rel, rel)) full.insert({p.x, p.z});
  for (const OutPair& p : sink.pairs()) {
    EXPECT_TRUE(full.count({p.x, p.z}));
  }
}

// When the light pass alone satisfies the sink, the heavy phase is
// skipped wholesale — no operand build, every planned block accounted as
// skipped.

TEST(QueryEngine, LimitSatisfiedByLightPassSkipsWholeHeavyPhase) {
  // Light section: groups of 4 x values sharing one y (800 light pairs,
  // emitted first — the x domain scan hits them before any heavy row).
  // Heavy section: a 100 x 100 complete bipartite block (2 product blocks
  // at row_block 64).
  BinaryRelation rel;
  for (Value x = 0; x < 200; ++x) rel.Add(x, 1000 + x / 4);
  for (Value i = 0; i < 100; ++i) {
    for (Value j = 0; j < 100; ++j) rel.Add(500 + i, 2000 + j);
  }
  rel.Finalize();
  IndexedRelation idx(rel);

  MmJoinOptions opts;
  opts.thresholds = {5, 5};
  opts.row_block = 64;
  LimitSink sink(3);
  opts.sink = &sink;
  auto res = MmJoinTwoPath(idx, idx, opts);
  ASSERT_GT(res.heavy_rows, 0u) << "test premise: heavy part must exist";
  EXPECT_EQ(sink.pairs().size(), 3u);
  EXPECT_EQ(res.heavy_blocks_executed, 0u);
  EXPECT_GT(res.heavy_blocks_total, 0u);
  EXPECT_EQ(res.heavy_blocks_skipped, res.heavy_blocks_total);
}

// ---- Determinism: sorted full output is identical at every thread
// count; limit output count is identical at every thread count.

TEST(QueryEngine, SortedOutputDeterministicAcrossThreadCounts) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  ExecOptions exec1;
  exec1.threads = 1;
  auto base = EngineAllPairs(&engine, TwoPathSpec(Strategy::kAuto), exec1);
  for (int threads : {2, 4}) {
    ExecOptions exec;
    exec.threads = threads;
    auto got = EngineAllPairs(&engine, TwoPathSpec(Strategy::kAuto), exec);
    EXPECT_EQ(got, base) << "threads=" << threads;
  }
}

TEST(QueryEngine, LimitCountDeterministicAcrossThreadCounts) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kMmJoin), &q).ok());
  for (int threads : {1, 2, 4}) {
    LimitSink sink(64);
    ExecOptions exec;
    exec.threads = threads;
    ASSERT_TRUE(engine.Execute(q, sink, exec).ok());
    EXPECT_EQ(sink.pairs().size(), 64u) << "threads=" << threads;
  }
}

// ---- TopKByCountSink against the full-sort oracle.

TEST(QueryEngine, TopKMatchesFullSortOracle) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  QuerySpec spec = TwoPathSpec(Strategy::kAuto);
  spec.count_witnesses = true;

  // Oracle: materialize every counted pair, full sort, take the head.
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(spec, &q).ok());
  VectorSink all;
  ASSERT_TRUE(engine.Execute(q, all, {}).ok());
  auto oracle = all.counted();
  std::sort(oracle.begin(), oracle.end(),
            [](const CountedPair& a, const CountedPair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.x != b.x) return a.x < b.x;
              return a.z < b.z;
            });
  const size_t k = 25;
  oracle.resize(std::min(oracle.size(), k));

  for (int threads : {1, 4}) {
    TopKByCountSink topk(k);
    ExecOptions exec;
    exec.threads = threads;
    ASSERT_TRUE(engine.Execute(q, topk, exec).ok());
    EXPECT_EQ(topk.top(), oracle) << "threads=" << threads;
  }
}

// ---- CountOnlySink.

TEST(QueryEngine, CountOnlyMatchesMaterializedSize) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  CountOnlySink counter;
  ASSERT_TRUE(engine.Run(TwoPathSpec(Strategy::kAuto), counter, {}).ok());
  EXPECT_EQ(counter.count(), oracle.size());
}

// ---- PreparedQuery reuse: the second execution must be a plan-cache hit
// and return identical results.

TEST(QueryEngine, PreparedReuseIsCacheHitWithIdenticalResults) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kAuto), &q).ok());

  VectorSink first, second;
  ExecStats stats1, stats2;
  ASSERT_TRUE(engine.Execute(q, first, {}, &stats1).ok());
  ASSERT_TRUE(engine.Execute(q, second, {}, &stats2).ok());
  EXPECT_FALSE(stats1.plan_cache_hit);
  EXPECT_TRUE(stats2.plan_cache_hit);
  EXPECT_TRUE(q.has_plan());
  EXPECT_EQ(q.executions(), 2u);
  EXPECT_EQ(Sorted(first.pairs()), Sorted(second.pairs()));

  // A thread-count change re-plans (the cost model is thread-aware), then
  // caches again.
  VectorSink third;
  ExecStats stats3;
  ExecOptions exec;
  exec.threads = 2;
  ASSERT_TRUE(engine.Execute(q, third, exec, &stats3).ok());
  EXPECT_FALSE(stats3.plan_cache_hit);
  EXPECT_EQ(Sorted(third.pairs()), Sorted(first.pairs()));
}

// ---- Structured validation errors (no aborts).

TEST(QueryEngine, UnknownRelationNameIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec = TwoPathSpec(Strategy::kAuto);
  spec.relations = {"nope"};
  PreparedQuery q;
  auto st = engine.Prepare(spec, &q);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unknown relation"), std::string::npos);
}

TEST(QueryEngine, MinCountWithoutWitnessesIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec = TwoPathSpec(Strategy::kAuto);
  spec.min_count = 3;  // count_witnesses stays false
  PreparedQuery q;
  auto st = engine.Prepare(spec, &q);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("count_witnesses"), std::string::npos);
}

TEST(QueryEngine, NonPositiveThreadsIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kAuto), &q).ok());
  VectorSink sink;
  ExecOptions exec;
  exec.threads = 0;
  auto st = engine.Execute(q, sink, exec);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("threads"), std::string::npos);
}

TEST(QueryEngine, StarIntoPairOnlySinkIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(spec, &q).ok());
  TopKByCountSink topk(5);  // pair-only: would silently drop every tuple
  auto st = engine.Execute(q, topk, {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tuple"), std::string::npos);
}

TEST(QueryEngine, WrongRelationCountIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R"};  // star needs >= 2
  PreparedQuery q;
  EXPECT_FALSE(engine.Prepare(spec, &q).ok());

  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R", "R", "R"};  // two-path takes at most 2
  EXPECT_FALSE(engine.Prepare(spec, &q).ok());
}

TEST(QueryEngine, ValidateJoinProjectOptionsHelper) {
  JoinProjectOptions opts;
  EXPECT_TRUE(ValidateJoinProjectOptions(opts).empty());
  opts.min_count = 2;
  EXPECT_FALSE(ValidateJoinProjectOptions(opts).empty());
  opts.count_witnesses = true;
  EXPECT_TRUE(ValidateJoinProjectOptions(opts).empty());
  opts.threads = -1;
  EXPECT_FALSE(ValidateJoinProjectOptions(opts).empty());
}

// ---- Star queries through the engine: full tuple delivery + limit.

TEST(QueryEngine, StarVectorSinkMatchesFacade) {
  const BinaryRelation rel =
      UniformBipartite(/*num_x=*/120, /*num_y=*/40, /*num_tuples=*/700, 3);
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R", "R"};

  IndexedRelation idx(rel);
  std::vector<const IndexedRelation*> rels{&idx, &idx, &idx};
  auto expect = JoinProject::Star(rels, {});

  VectorSink sink;
  ExecStats stats;
  ASSERT_TRUE(engine.Run(spec, sink, {}, &stats).ok());
  EXPECT_EQ(sink.tuple_arity(), 3u);
  EXPECT_EQ(sink.tuple_data(), expect.tuples.flat());
}

TEST(QueryEngine, StarLimitDeliversDistinctSubset) {
  const BinaryRelation rel =
      UniformBipartite(/*num_x=*/120, /*num_y=*/40, /*num_tuples=*/700, 3);
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};

  VectorSink all;
  ASSERT_TRUE(engine.Run(spec, all, {}).ok());
  const size_t total = all.tuple_data().size() / 2;
  std::set<std::vector<Value>> full;
  for (size_t i = 0; i < total; ++i) {
    full.insert({all.tuple_data()[2 * i], all.tuple_data()[2 * i + 1]});
  }

  LimitSink limited(50);
  ASSERT_TRUE(engine.Run(spec, limited, {}).ok());
  ASSERT_EQ(limited.tuple_arity(), 2u);
  const size_t got = limited.tuple_data().size() / 2;
  EXPECT_EQ(got, std::min<size_t>(50, total));
  std::set<std::vector<Value>> seen;
  for (size_t i = 0; i < got; ++i) {
    std::vector<Value> t{limited.tuple_data()[2 * i],
                         limited.tuple_data()[2 * i + 1]};
    EXPECT_TRUE(full.count(t)) << "tuple not in the full star output";
    EXPECT_TRUE(seen.insert(t).second) << "duplicate tuple delivered";
  }
}

// ---- SCJ / SSJ through the engine match the direct pipelines.

TEST(QueryEngine, ScjMatchesMmScj) {
  BipartiteSpec bs;
  bs.num_sets = 300;
  bs.dom_size = 120;
  bs.max_set_size = 10;
  bs.subset_fraction = 0.3;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  auto expect = MmScj(fam, {});

  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kScj;
  spec.relations = {"R"};
  VectorSink sink;
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());

  ScjResult got;
  for (const OutPair& p : sink.pairs()) {
    got.push_back(ContainmentPair{p.x, p.z});
  }
  CanonicalizeScj(&got);
  EXPECT_EQ(got, expect);
}

TEST(QueryEngine, SsjMatchesMmSsj) {
  BipartiteSpec bs;
  bs.num_sets = 300;
  bs.dom_size = 120;
  bs.max_set_size = 10;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions so;
  so.c = 2;
  so.ordered = true;
  auto expect = MmSsj(fam, so);

  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kSsj;
  spec.relations = {"R"};
  spec.ssj_c = 2;
  spec.ssj_ordered = true;
  VectorSink sink;
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());

  SsjResult got;
  for (const CountedPair& p : sink.counted()) {
    got.push_back(SimilarPair{p.x, p.z, p.count});
  }
  CanonicalizeSsj(&got, /*ordered=*/true);
  EXPECT_EQ(got, expect);
}

// SSJ with a limit: the engine's early exit flows through the adapter to
// the underlying two-path join.

TEST(QueryEngine, SsjLimitDeliversQualifyingPairs) {
  BipartiteSpec bs;
  bs.num_sets = 400;
  bs.dom_size = 100;
  bs.max_set_size = 12;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions so;
  so.c = 2;
  auto full = MmSsj(fam, so);
  std::set<std::pair<Value, Value>> full_set;
  for (const SimilarPair& p : full) full_set.insert({p.a, p.b});

  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kSsj;
  spec.relations = {"R"};
  spec.ssj_c = 2;
  LimitSink sink(20);
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());
  EXPECT_EQ(sink.pairs().size(), std::min<size_t>(20, full_set.size()));
  for (const OutPair& p : sink.pairs()) {
    EXPECT_TRUE(full_set.count({p.x, p.z}));
  }
}

// ---- PageSink oracle tests: exact page size + exact skip accounting on
// every strategy, page boundaries inside and beyond the output.

TEST(QueryEngine, PageSinkEveryStrategy) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : oracle) full.insert({p.x, p.z});
  const uint64_t out = full.size();

  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    for (uint64_t offset : {uint64_t{0}, uint64_t{17}, out - 5, out,
                            out + 100}) {
      for (int threads : {1, 3}) {
        PreparedQuery q;
        ASSERT_TRUE(engine.Prepare(TwoPathSpec(s), &q).ok());
        PageSink sink(offset, 25);
        ExecOptions exec;
        exec.threads = threads;
        ASSERT_TRUE(engine.Execute(q, sink, exec).ok());
        const uint64_t skipped = std::min(offset, out);
        EXPECT_EQ(sink.size(), std::min<uint64_t>(25, out - skipped))
            << StrategyName(s) << " offset=" << offset
            << " threads=" << threads;
        EXPECT_EQ(sink.skipped(), skipped)
            << StrategyName(s) << " offset=" << offset
            << " threads=" << threads;
        std::set<std::pair<Value, Value>> seen;
        for (const OutPair& p : sink.pairs()) {
          EXPECT_TRUE(full.count({p.x, p.z})) << StrategyName(s);
          EXPECT_TRUE(seen.insert({p.x, p.z}).second)
              << "duplicate in page";
        }
      }
    }
  }
}

// A page whose boundaries land inside the heavy product pass: blocks
// before the page fill it, blocks after the page are skipped, and the
// executed/skipped split accounts for every planned block.

TEST(QueryEngine, PageSpansHeavyProductBlockBoundary) {
  const BinaryRelation rel = SkewedGraph();
  IndexedRelation idx(rel);
  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : OracleTwoPath(rel, rel)) full.insert({p.x, p.z});

  // Thresholds {1, 1}: the whole output comes from the product blocks
  // (240 heavy rows = 4 blocks of 64), so a page deep into the output
  // must execute more than one block and still skip the tail.
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.row_block = 64;
  PageSink sink(3000, 1200);
  opts.sink = &sink;
  auto res = MmJoinTwoPath(idx, idx, opts);
  ASSERT_GE(res.heavy_blocks_total, 4u);
  EXPECT_EQ(sink.size(), std::min<uint64_t>(1200, full.size() - 3000));
  EXPECT_EQ(sink.skipped(), 3000u);
  EXPECT_GE(res.heavy_blocks_executed, 2u)
      << "the page offset spans past the first product block";
  EXPECT_GT(res.heavy_blocks_skipped, 0u)
      << "a full page must short-circuit the remaining blocks";
  EXPECT_EQ(res.heavy_blocks_executed + res.heavy_blocks_skipped,
            res.heavy_blocks_total);
  for (const OutPair& p : sink.pairs()) {
    EXPECT_TRUE(full.count({p.x, p.z}));
  }
}

TEST(QueryEngine, PageOffsetBeyondOutputIsEmptyWithExactSkip) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : OracleTwoPath(rel, rel)) full.insert({p.x, p.z});

  PageSink sink(full.size() + 1000, 10);
  ASSERT_TRUE(engine.Run(TwoPathSpec(Strategy::kAuto), sink, {}).ok());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.skipped(), full.size())
      << "skip accounting stays exact when the page starts past the end";
}

// Pagination of star tuples: a page is a distinct subset with exact size.

TEST(QueryEngine, StarPageSinkDeliversDistinctPage) {
  const BinaryRelation rel =
      UniformBipartite(/*num_x=*/120, /*num_y=*/40, /*num_tuples=*/700, 3);
  QueryEngine engine;
  engine.AddRelation("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};

  VectorSink all;
  ASSERT_TRUE(engine.Run(spec, all, {}).ok());
  const size_t total = all.tuple_data().size() / 2;
  std::set<std::vector<Value>> full;
  for (size_t i = 0; i < total; ++i) {
    full.insert({all.tuple_data()[2 * i], all.tuple_data()[2 * i + 1]});
  }

  PageSink page(10, 25);
  ASSERT_TRUE(engine.Run(spec, page, {}).ok());
  ASSERT_EQ(page.tuple_arity(), 2u);
  const size_t got = page.tuple_data().size() / 2;
  EXPECT_EQ(got, std::min<size_t>(25, total - std::min<size_t>(10, total)));
  EXPECT_EQ(page.skipped(), std::min<uint64_t>(10, total));
  std::set<std::vector<Value>> seen;
  for (size_t i = 0; i < got; ++i) {
    std::vector<Value> t{page.tuple_data()[2 * i],
                         page.tuple_data()[2 * i + 1]};
    EXPECT_TRUE(full.count(t)) << "page tuple not in the star output";
    EXPECT_TRUE(seen.insert(t).second) << "duplicate tuple in page";
  }
}

// ---- OrderedBySink oracle tests: ranked delivery equals sorting the full
// output, on every strategy and thread count, with and without a limit.

TEST(QueryEngine, OrderedBySinkMatchesFullSortOracle) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);

  // (x, z)-ascending oracle over plain pairs.
  const auto oracle = OracleTwoPath(rel, rel);  // already sorted
  // count-descending oracle over counted pairs.
  QuerySpec counted_spec = TwoPathSpec(Strategy::kAuto);
  counted_spec.count_witnesses = true;
  VectorSink all;
  ASSERT_TRUE(engine.Run(counted_spec, all, {}).ok());
  auto count_oracle = all.counted();
  std::sort(count_oracle.begin(), count_oracle.end(),
            [](const CountedPair& a, const CountedPair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.x != b.x) return a.x < b.x;
              return a.z < b.z;
            });

  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    for (int threads : {1, 3, HardwareThreads()}) {
      ExecOptions exec;
      exec.threads = threads;

      OrderedBySink by_xz(ResultOrder::kXzAscending);
      ASSERT_TRUE(engine.Run(TwoPathSpec(s), by_xz, exec).ok());
      ASSERT_EQ(by_xz.ranked().size(), oracle.size())
          << StrategyName(s) << " threads=" << threads;
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(by_xz.ranked()[i].x, oracle[i].x);
        EXPECT_EQ(by_xz.ranked()[i].z, oracle[i].z);
        EXPECT_EQ(by_xz.ranked()[i].count, 1u);  // plain pairs weigh 1
      }

      QuerySpec cs = TwoPathSpec(s);
      cs.count_witnesses = true;
      OrderedBySink by_count(ResultOrder::kCountDescending);
      ASSERT_TRUE(engine.Run(cs, by_count, exec).ok());
      EXPECT_EQ(by_count.ranked(), count_oracle)
          << StrategyName(s) << " threads=" << threads;

      // Bounded merge buffer: the limited sink is the oracle's prefix.
      OrderedBySink top(ResultOrder::kCountDescending, 23);
      ASSERT_TRUE(engine.Run(cs, top, exec).ok());
      auto prefix = count_oracle;
      prefix.resize(std::min<size_t>(23, prefix.size()));
      EXPECT_EQ(top.ranked(), prefix)
          << StrategyName(s) << " threads=" << threads;
    }
  }
}

TEST(QueryEngine, OrderedBySinkStreamsInRankOrder) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  OrderedBySink sink(ResultOrder::kXzAscending);
  std::vector<CountedPair> streamed;
  sink.set_on_result(
      [&streamed](const CountedPair& p) { streamed.push_back(p); });
  ASSERT_TRUE(engine.Run(TwoPathSpec(Strategy::kAuto), sink, {}).ok());
  EXPECT_EQ(streamed, sink.ranked())
      << "the callback must see exactly the ranked stream, in order";
  EXPECT_TRUE(std::is_sorted(streamed.begin(), streamed.end(),
                             [](const CountedPair& a, const CountedPair& b) {
                               return std::make_pair(a.x, a.z) <
                                      std::make_pair(b.x, b.z);
                             }));
}

TEST(QueryEngine, OrderedBySinkRejectsStarQueries) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};
  OrderedBySink sink(ResultOrder::kXzAscending);
  auto st = engine.Run(spec, sink, {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tuple"), std::string::npos);
}

// ---- Ordered + page sinks through the SCJ / SSJ adapters (the remaining
// strategy emit paths).

TEST(QueryEngine, ScjOrderedBySinkMatchesSortedMmScj) {
  BipartiteSpec bs;
  bs.num_sets = 300;
  bs.dom_size = 120;
  bs.max_set_size = 10;
  bs.subset_fraction = 0.3;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  auto expect = MmScj(fam, {});
  CanonicalizeScj(&expect);  // sorted (x, z)

  QueryEngine engine;
  engine.AddRelation("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kScj;
  spec.relations = {"R"};
  OrderedBySink sink(ResultOrder::kXzAscending);
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());
  ASSERT_EQ(sink.ranked().size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(sink.ranked()[i].x, expect[i].sub);
    EXPECT_EQ(sink.ranked()[i].z, expect[i].super);
  }
}

TEST(QueryEngine, SsjOrderedAndPagedSinks) {
  BipartiteSpec bs;
  bs.num_sets = 300;
  bs.dom_size = 120;
  bs.max_set_size = 10;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions so;
  so.c = 2;
  so.ordered = true;
  auto expect = MmSsj(fam, so);
  CanonicalizeSsj(&expect, /*ordered=*/true);  // overlap desc, (a, b) asc

  QueryEngine engine;
  engine.AddRelation("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kSsj;
  spec.relations = {"R"};
  spec.ssj_c = 2;
  spec.ssj_ordered = true;

  OrderedBySink ranked(ResultOrder::kCountDescending);
  ASSERT_TRUE(engine.Run(spec, ranked, {}).ok());
  ASSERT_EQ(ranked.ranked().size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(ranked.ranked()[i].count, expect[i].overlap) << "rank " << i;
  }

  // Page over the unordered SSJ pair stream: exact size + skip.
  QuerySpec plain = spec;
  plain.ssj_ordered = false;
  PageSink page(7, 9);
  ASSERT_TRUE(engine.Run(plain, page, {}).ok());
  const uint64_t out = expect.size();
  const uint64_t skipped = std::min<uint64_t>(7, out);
  EXPECT_EQ(page.size(), std::min<uint64_t>(9, out - skipped));
  EXPECT_EQ(page.skipped(), skipped);
}

// ---- ParallelForDynamic chunk-claim + done() audit regression: a sink
// that turns done MID-CHUNK during the light pass must skip the entire
// downstream heavy phase, and the skipped block count must be identical
// at every thread count (threads=1's in-order inline claims and the
// pooled path's dynamic claims account the same blocks).

TEST(QueryEngine, DoneMidChunkSkipsIdenticalDownstreamBlocks) {
  // Light section first in the x domain (800 light pairs inside the first
  // 256-head chunk — the limit of 3 fires mid-chunk), heavy section after
  // (100 x 100 complete bipartite block = multiple product blocks).
  BinaryRelation rel;
  for (Value x = 0; x < 200; ++x) rel.Add(x, 1000 + x / 4);
  for (Value i = 0; i < 100; ++i) {
    for (Value j = 0; j < 100; ++j) rel.Add(500 + i, 2000 + j);
  }
  rel.Finalize();
  IndexedRelation idx(rel);

  uint64_t mm_total = 0;
  uint64_t nonmm_total = 0;
  for (int threads : {1, 3, HardwareThreads()}) {
    {
      MmJoinOptions opts;
      opts.thresholds = {5, 5};
      opts.row_block = 64;
      opts.threads = threads;
      LimitSink sink(3);
      opts.sink = &sink;
      auto res = MmJoinTwoPath(idx, idx, opts);
      ASSERT_GT(res.heavy_blocks_total, 0u);
      EXPECT_EQ(sink.size(), 3u) << "threads=" << threads;
      EXPECT_EQ(res.heavy_blocks_executed, 0u)
          << "light-satisfied sink must skip the whole heavy phase at "
             "threads="
          << threads;
      EXPECT_EQ(res.heavy_blocks_skipped, res.heavy_blocks_total);
      if (mm_total == 0) mm_total = res.heavy_blocks_total;
      EXPECT_EQ(res.heavy_blocks_total, mm_total)
          << "planned block count must not depend on threads";
    }
    {
      NonMmJoinOptions opts;
      opts.thresholds = {5, 5};
      opts.threads = threads;
      LimitSink sink(3);
      opts.sink = &sink;
      auto res = NonMmJoinTwoPath(idx, idx, opts);
      ASSERT_GT(res.heavy_blocks_total, 0u);
      EXPECT_EQ(sink.size(), 3u) << "threads=" << threads;
      EXPECT_EQ(res.heavy_blocks_executed, 0u) << "threads=" << threads;
      EXPECT_EQ(res.heavy_blocks_skipped, res.heavy_blocks_total);
      if (nonmm_total == 0) nonmm_total = res.heavy_blocks_total;
      EXPECT_EQ(res.heavy_blocks_total, nonmm_total);
    }
    {
      // Page variant: the page fills from the light section alone.
      MmJoinOptions opts;
      opts.thresholds = {5, 5};
      opts.row_block = 64;
      opts.threads = threads;
      PageSink sink(5, 3);
      opts.sink = &sink;
      auto res = MmJoinTwoPath(idx, idx, opts);
      EXPECT_EQ(sink.size(), 3u) << "threads=" << threads;
      EXPECT_EQ(sink.skipped(), 5u) << "threads=" << threads;
      EXPECT_EQ(res.heavy_blocks_executed, 0u) << "threads=" << threads;
      EXPECT_EQ(res.heavy_blocks_skipped, res.heavy_blocks_total);
    }
  }
}

// ---- Triangle count through the engine.

// Cancellation before any work: every light chunk and heavy block is
// accounted skipped, split by phase, identically at every thread count.

TEST(QueryEngine, TriangleCancellationSplitsSkipCountersExactly) {
  BinaryRelation sym = CommunityGraph(3, 60, 0.5, 21);
  QueryEngine engine;
  engine.AddRelation("G", sym);
  QuerySpec spec;
  spec.kind = QueryKind::kTriangle;
  spec.relations = {"G"};

  uint64_t light_skipped = 0;
  for (int threads : {1, 3}) {
    LimitSink cancel(0);  // done() from the first poll
    ExecStats stats;
    ExecOptions exec;
    exec.threads = threads;
    ASSERT_TRUE(engine.Run(spec, cancel, exec, &stats).ok());
    EXPECT_TRUE(stats.interrupted);
    EXPECT_EQ(stats.interrupt_reason, InterruptReason::kCancelled);
    EXPECT_EQ(stats.triangle_count, 0u) << "threads=" << threads;
    EXPECT_GT(stats.light_chunks_skipped, 0u);
    if (light_skipped == 0) light_skipped = stats.light_chunks_skipped;
    EXPECT_EQ(stats.light_chunks_skipped, light_skipped)
        << "skip accounting must not depend on the thread count";
  }
}

TEST(QueryEngine, TriangleCountMatchesDirect) {
  BinaryRelation sym = CommunityGraph(3, 60, 0.5, 21);
  IndexedRelation idx(sym);
  auto direct = CountTrianglesMm(idx, {});

  QueryEngine engine;
  engine.catalog().Put("G", sym);
  QuerySpec spec;
  spec.kind = QueryKind::kTriangle;
  spec.relations = {"G"};
  VectorSink sink;  // no pair delivery; cancellation token only
  ExecStats stats;
  ASSERT_TRUE(engine.Run(spec, sink, {}, &stats).ok());
  EXPECT_EQ(stats.triangle_count, direct.triangles);
  EXPECT_FALSE(stats.interrupted);
}

}  // namespace
}  // namespace jpmm
