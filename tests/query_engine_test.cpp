// QueryEngine facade + ResultSink semantics: limit early exit mid product
// block on every strategy, cross-thread-count determinism, TopKByCountSink
// against a full-sort oracle, PreparedQuery reuse (plan-cache hits must
// not change results), and structured validation errors instead of aborts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/join_project.h"
#include "core/mm_join.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "scj/mm_scj.h"
#include "ssj/mm_ssj.h"
#include "storage/set_family.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::Sorted;

// A skewed graph whose two-path join has a real heavy part under small
// thresholds (four dense communities). Small enough for the O(|R|^2)
// brute-force oracle; tests that need several product blocks shrink
// row_block instead of growing the graph.
BinaryRelation SkewedGraph() {
  return CommunityGraph(/*communities=*/4, /*community_size=*/60,
                        /*p_in=*/0.5, /*seed=*/11);
}

QueryEngine MakeEngine(const BinaryRelation& rel) {
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  return engine;
}

QuerySpec TwoPathSpec(Strategy strategy) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  spec.strategy = strategy;
  return spec;
}

std::vector<OutPair> EngineAllPairs(QueryEngine* engine,
                                    const QuerySpec& spec,
                                    const ExecOptions& exec) {
  PreparedQuery q;
  auto st = engine->Prepare(spec, &q);
  EXPECT_TRUE(st.ok()) << st.message();
  VectorSink sink;
  st = engine->Execute(q, sink, exec);
  EXPECT_TRUE(st.ok()) << st.message();
  return Sorted(sink.pairs());
}

// ---- VectorSink back-compat: the engine + VectorSink must reproduce the
// pre-redesign facade results exactly, for every strategy.

TEST(QueryEngine, VectorSinkMatchesOldFacade) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  for (Strategy s : {Strategy::kAuto, Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    JoinProjectOptions old_opts;
    old_opts.strategy = s;
    auto old_out = JoinProject::TwoPath(rel, rel, old_opts);
    auto new_pairs = EngineAllPairs(&engine, TwoPathSpec(s), {});
    EXPECT_EQ(new_pairs, Sorted(old_out.pairs)) << StrategyName(s);
  }
}

// ---- Limit semantics: exactly min(k, |OUT|) pairs, every one a real
// output pair, on every strategy and thread count.

TEST(QueryEngine, LimitSinkEveryStrategy) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : oracle) full.insert({p.x, p.z});

  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    for (int threads : {1, 3}) {
      PreparedQuery q;
      auto st = engine.Prepare(TwoPathSpec(s), &q);
      ASSERT_TRUE(st.ok()) << st.message();
      LimitSink sink(37);
      ExecOptions exec;
      exec.threads = threads;
      st = engine.Execute(q, sink, exec);
      ASSERT_TRUE(st.ok()) << st.message();
      EXPECT_EQ(sink.pairs().size(), std::min<size_t>(37, full.size()))
          << StrategyName(s) << " threads=" << threads;
      for (const OutPair& p : sink.pairs()) {
        EXPECT_TRUE(full.count({p.x, p.z})) << StrategyName(s);
      }
    }
  }
}

TEST(QueryEngine, LimitLargerThanOutputDeliversEverything) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  LimitSink sink(oracle.size() + 1000);
  auto st = engine.Run(TwoPathSpec(Strategy::kAuto), sink, {});
  ASSERT_TRUE(st.ok()) << st.message();
  auto got = sink.pairs();
  EXPECT_EQ(Sorted(got), oracle);
}

// The core acceptance property: a small limit on a heavy-part query stops
// mid product pass — some planned blocks are never executed.

TEST(QueryEngine, LimitSkipsHeavyProductBlocks) {
  const BinaryRelation rel = SkewedGraph();
  IndexedRelation idx(rel);

  // Thresholds {1, 1}: everything is heavy, so the output comes from the
  // product blocks alone (240 heavy rows = 4 blocks of 64).
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.row_block = 64;
  LimitSink sink(5);
  opts.sink = &sink;
  auto res = MmJoinTwoPath(idx, idx, opts);
  EXPECT_GE(res.heavy_blocks_total, 2u);
  EXPECT_GT(res.heavy_blocks_skipped, 0u);
  EXPECT_LT(res.heavy_blocks_executed, res.heavy_blocks_total);
  EXPECT_EQ(res.heavy_blocks_executed + res.heavy_blocks_skipped,
            res.heavy_blocks_total);
  EXPECT_EQ(sink.pairs().size(), 5u);

  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : OracleTwoPath(rel, rel)) full.insert({p.x, p.z});
  for (const OutPair& p : sink.pairs()) {
    EXPECT_TRUE(full.count({p.x, p.z}));
  }
}

// When the light pass alone satisfies the sink, the heavy phase is
// skipped wholesale — no operand build, every planned block accounted as
// skipped.

TEST(QueryEngine, LimitSatisfiedByLightPassSkipsWholeHeavyPhase) {
  // Light section: groups of 4 x values sharing one y (800 light pairs,
  // emitted first — the x domain scan hits them before any heavy row).
  // Heavy section: a 100 x 100 complete bipartite block (2 product blocks
  // at row_block 64).
  BinaryRelation rel;
  for (Value x = 0; x < 200; ++x) rel.Add(x, 1000 + x / 4);
  for (Value i = 0; i < 100; ++i) {
    for (Value j = 0; j < 100; ++j) rel.Add(500 + i, 2000 + j);
  }
  rel.Finalize();
  IndexedRelation idx(rel);

  MmJoinOptions opts;
  opts.thresholds = {5, 5};
  opts.row_block = 64;
  LimitSink sink(3);
  opts.sink = &sink;
  auto res = MmJoinTwoPath(idx, idx, opts);
  ASSERT_GT(res.heavy_rows, 0u) << "test premise: heavy part must exist";
  EXPECT_EQ(sink.pairs().size(), 3u);
  EXPECT_EQ(res.heavy_blocks_executed, 0u);
  EXPECT_GT(res.heavy_blocks_total, 0u);
  EXPECT_EQ(res.heavy_blocks_skipped, res.heavy_blocks_total);
}

// ---- Determinism: sorted full output is identical at every thread
// count; limit output count is identical at every thread count.

TEST(QueryEngine, SortedOutputDeterministicAcrossThreadCounts) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  ExecOptions exec1;
  exec1.threads = 1;
  auto base = EngineAllPairs(&engine, TwoPathSpec(Strategy::kAuto), exec1);
  for (int threads : {2, 4}) {
    ExecOptions exec;
    exec.threads = threads;
    auto got = EngineAllPairs(&engine, TwoPathSpec(Strategy::kAuto), exec);
    EXPECT_EQ(got, base) << "threads=" << threads;
  }
}

TEST(QueryEngine, LimitCountDeterministicAcrossThreadCounts) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kMmJoin), &q).ok());
  for (int threads : {1, 2, 4}) {
    LimitSink sink(64);
    ExecOptions exec;
    exec.threads = threads;
    ASSERT_TRUE(engine.Execute(q, sink, exec).ok());
    EXPECT_EQ(sink.pairs().size(), 64u) << "threads=" << threads;
  }
}

// ---- TopKByCountSink against the full-sort oracle.

TEST(QueryEngine, TopKMatchesFullSortOracle) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  QuerySpec spec = TwoPathSpec(Strategy::kAuto);
  spec.count_witnesses = true;

  // Oracle: materialize every counted pair, full sort, take the head.
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(spec, &q).ok());
  VectorSink all;
  ASSERT_TRUE(engine.Execute(q, all, {}).ok());
  auto oracle = all.counted();
  std::sort(oracle.begin(), oracle.end(),
            [](const CountedPair& a, const CountedPair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.x != b.x) return a.x < b.x;
              return a.z < b.z;
            });
  const size_t k = 25;
  oracle.resize(std::min(oracle.size(), k));

  for (int threads : {1, 4}) {
    TopKByCountSink topk(k);
    ExecOptions exec;
    exec.threads = threads;
    ASSERT_TRUE(engine.Execute(q, topk, exec).ok());
    EXPECT_EQ(topk.top(), oracle) << "threads=" << threads;
  }
}

// ---- CountOnlySink.

TEST(QueryEngine, CountOnlyMatchesMaterializedSize) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  CountOnlySink counter;
  ASSERT_TRUE(engine.Run(TwoPathSpec(Strategy::kAuto), counter, {}).ok());
  EXPECT_EQ(counter.count(), oracle.size());
}

// ---- PreparedQuery reuse: the second execution must be a plan-cache hit
// and return identical results.

TEST(QueryEngine, PreparedReuseIsCacheHitWithIdenticalResults) {
  const BinaryRelation rel = SkewedGraph();
  QueryEngine engine = MakeEngine(rel);
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kAuto), &q).ok());

  VectorSink first, second;
  ExecStats stats1, stats2;
  ASSERT_TRUE(engine.Execute(q, first, {}, &stats1).ok());
  ASSERT_TRUE(engine.Execute(q, second, {}, &stats2).ok());
  EXPECT_FALSE(stats1.plan_cache_hit);
  EXPECT_TRUE(stats2.plan_cache_hit);
  EXPECT_TRUE(q.has_plan());
  EXPECT_EQ(q.executions(), 2u);
  EXPECT_EQ(Sorted(first.pairs()), Sorted(second.pairs()));

  // A thread-count change re-plans (the cost model is thread-aware), then
  // caches again.
  VectorSink third;
  ExecStats stats3;
  ExecOptions exec;
  exec.threads = 2;
  ASSERT_TRUE(engine.Execute(q, third, exec, &stats3).ok());
  EXPECT_FALSE(stats3.plan_cache_hit);
  EXPECT_EQ(Sorted(third.pairs()), Sorted(first.pairs()));
}

// ---- Structured validation errors (no aborts).

TEST(QueryEngine, UnknownRelationNameIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec = TwoPathSpec(Strategy::kAuto);
  spec.relations = {"nope"};
  PreparedQuery q;
  auto st = engine.Prepare(spec, &q);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unknown relation"), std::string::npos);
}

TEST(QueryEngine, MinCountWithoutWitnessesIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec = TwoPathSpec(Strategy::kAuto);
  spec.min_count = 3;  // count_witnesses stays false
  PreparedQuery q;
  auto st = engine.Prepare(spec, &q);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("count_witnesses"), std::string::npos);
}

TEST(QueryEngine, NonPositiveThreadsIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kAuto), &q).ok());
  VectorSink sink;
  ExecOptions exec;
  exec.threads = 0;
  auto st = engine.Execute(q, sink, exec);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("threads"), std::string::npos);
}

TEST(QueryEngine, StarIntoPairOnlySinkIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(spec, &q).ok());
  TopKByCountSink topk(5);  // pair-only: would silently drop every tuple
  auto st = engine.Execute(q, topk, {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tuple"), std::string::npos);
}

TEST(QueryEngine, WrongRelationCountIsError) {
  QueryEngine engine = MakeEngine(SkewedGraph());
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R"};  // star needs >= 2
  PreparedQuery q;
  EXPECT_FALSE(engine.Prepare(spec, &q).ok());

  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R", "R", "R"};  // two-path takes at most 2
  EXPECT_FALSE(engine.Prepare(spec, &q).ok());
}

TEST(QueryEngine, ValidateJoinProjectOptionsHelper) {
  JoinProjectOptions opts;
  EXPECT_TRUE(ValidateJoinProjectOptions(opts).empty());
  opts.min_count = 2;
  EXPECT_FALSE(ValidateJoinProjectOptions(opts).empty());
  opts.count_witnesses = true;
  EXPECT_TRUE(ValidateJoinProjectOptions(opts).empty());
  opts.threads = -1;
  EXPECT_FALSE(ValidateJoinProjectOptions(opts).empty());
}

// ---- Star queries through the engine: full tuple delivery + limit.

TEST(QueryEngine, StarVectorSinkMatchesFacade) {
  const BinaryRelation rel =
      UniformBipartite(/*num_x=*/120, /*num_y=*/40, /*num_tuples=*/700, 3);
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R", "R"};

  IndexedRelation idx(rel);
  std::vector<const IndexedRelation*> rels{&idx, &idx, &idx};
  auto expect = JoinProject::Star(rels, {});

  VectorSink sink;
  ExecStats stats;
  ASSERT_TRUE(engine.Run(spec, sink, {}, &stats).ok());
  EXPECT_EQ(sink.tuple_arity(), 3u);
  EXPECT_EQ(sink.tuple_data(), expect.tuples.flat());
}

TEST(QueryEngine, StarLimitDeliversDistinctSubset) {
  const BinaryRelation rel =
      UniformBipartite(/*num_x=*/120, /*num_y=*/40, /*num_tuples=*/700, 3);
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R"};

  VectorSink all;
  ASSERT_TRUE(engine.Run(spec, all, {}).ok());
  const size_t total = all.tuple_data().size() / 2;
  std::set<std::vector<Value>> full;
  for (size_t i = 0; i < total; ++i) {
    full.insert({all.tuple_data()[2 * i], all.tuple_data()[2 * i + 1]});
  }

  LimitSink limited(50);
  ASSERT_TRUE(engine.Run(spec, limited, {}).ok());
  ASSERT_EQ(limited.tuple_arity(), 2u);
  const size_t got = limited.tuple_data().size() / 2;
  EXPECT_EQ(got, std::min<size_t>(50, total));
  std::set<std::vector<Value>> seen;
  for (size_t i = 0; i < got; ++i) {
    std::vector<Value> t{limited.tuple_data()[2 * i],
                         limited.tuple_data()[2 * i + 1]};
    EXPECT_TRUE(full.count(t)) << "tuple not in the full star output";
    EXPECT_TRUE(seen.insert(t).second) << "duplicate tuple delivered";
  }
}

// ---- SCJ / SSJ through the engine match the direct pipelines.

TEST(QueryEngine, ScjMatchesMmScj) {
  BipartiteSpec bs;
  bs.num_sets = 300;
  bs.dom_size = 120;
  bs.max_set_size = 10;
  bs.subset_fraction = 0.3;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  auto expect = MmScj(fam, {});

  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kScj;
  spec.relations = {"R"};
  VectorSink sink;
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());

  ScjResult got;
  for (const OutPair& p : sink.pairs()) {
    got.push_back(ContainmentPair{p.x, p.z});
  }
  CanonicalizeScj(&got);
  EXPECT_EQ(got, expect);
}

TEST(QueryEngine, SsjMatchesMmSsj) {
  BipartiteSpec bs;
  bs.num_sets = 300;
  bs.dom_size = 120;
  bs.max_set_size = 10;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions so;
  so.c = 2;
  so.ordered = true;
  auto expect = MmSsj(fam, so);

  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kSsj;
  spec.relations = {"R"};
  spec.ssj_c = 2;
  spec.ssj_ordered = true;
  VectorSink sink;
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());

  SsjResult got;
  for (const CountedPair& p : sink.counted()) {
    got.push_back(SimilarPair{p.x, p.z, p.count});
  }
  CanonicalizeSsj(&got, /*ordered=*/true);
  EXPECT_EQ(got, expect);
}

// SSJ with a limit: the engine's early exit flows through the adapter to
// the underlying two-path join.

TEST(QueryEngine, SsjLimitDeliversQualifyingPairs) {
  BipartiteSpec bs;
  bs.num_sets = 400;
  bs.dom_size = 100;
  bs.max_set_size = 12;
  const BinaryRelation rel = MakeBipartite(bs);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions so;
  so.c = 2;
  auto full = MmSsj(fam, so);
  std::set<std::pair<Value, Value>> full_set;
  for (const SimilarPair& p : full) full_set.insert({p.a, p.b});

  QueryEngine engine;
  engine.catalog().Put("R", rel);
  QuerySpec spec;
  spec.kind = QueryKind::kSsj;
  spec.relations = {"R"};
  spec.ssj_c = 2;
  LimitSink sink(20);
  ASSERT_TRUE(engine.Run(spec, sink, {}).ok());
  EXPECT_EQ(sink.pairs().size(), std::min<size_t>(20, full_set.size()));
  for (const OutPair& p : sink.pairs()) {
    EXPECT_TRUE(full_set.count({p.x, p.z}));
  }
}

// ---- Triangle count through the engine.

TEST(QueryEngine, TriangleCountMatchesDirect) {
  BinaryRelation sym = CommunityGraph(3, 60, 0.5, 21);
  IndexedRelation idx(sym);
  auto direct = CountTrianglesMm(idx, {});

  QueryEngine engine;
  engine.catalog().Put("G", sym);
  QuerySpec spec;
  spec.kind = QueryKind::kTriangle;
  spec.relations = {"G"};
  VectorSink sink;  // no pair delivery; cancellation token only
  ExecStats stats;
  ASSERT_TRUE(engine.Run(spec, sink, {}, &stats).ok());
  EXPECT_EQ(stats.triangle_count, direct.triangles);
  EXPECT_FALSE(stats.triangle_cancelled);
}

}  // namespace
}  // namespace jpmm
