// Tests for the runtime kernel-ISA dispatch layer (common/cpu_features.h):
// detection sanity, override/restore semantics, kernel selector fallback,
// the jpmm_isa gauge, and the regression that calibration re-measures per
// dispatch level instead of serving one global rate set.

#include <gtest/gtest.h>

#include <string>

#include "common/cpu_features.h"
#include "common/metrics.h"
#include "matrix/bool_kernels.h"
#include "matrix/calibration.h"
#include "matrix/matmul_kernels.h"
#include "matrix/sparse_kernels.h"

namespace jpmm {
namespace {

TEST(IsaDispatch, DetectionIsSaneAndMonotone) {
  const KernelIsa best = DetectBestIsa();
  EXPECT_EQ(best, DetectBestIsa());  // cached, stable
  EXPECT_TRUE(IsaSupported(KernelIsa::kPortable));
  // A supported level implies every lower one.
  if (IsaSupported(KernelIsa::kAvx512)) {
    EXPECT_TRUE(IsaSupported(KernelIsa::kAvx2));
  }
  // VPOPCNTDQ is an AVX-512 extension.
  if (HasAvx512Vpopcntdq()) {
    EXPECT_EQ(DetectBestIsa(), KernelIsa::kAvx512);
  }
  // The active level never exceeds what the host supports.
  EXPECT_LE(static_cast<int>(ActiveIsa()), static_cast<int>(best));
}

TEST(IsaDispatch, ParseKernelIsaRoundTripsAndRejects) {
  for (KernelIsa isa : {KernelIsa::kPortable, KernelIsa::kAvx2,
                        KernelIsa::kAvx512}) {
    KernelIsa parsed;
    ASSERT_TRUE(ParseKernelIsa(KernelIsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  KernelIsa out = KernelIsa::kAvx2;
  EXPECT_FALSE(ParseKernelIsa("", &out));
  EXPECT_FALSE(ParseKernelIsa("AVX2", &out));  // case-sensitive
  EXPECT_FALSE(ParseKernelIsa("sse", &out));
  EXPECT_EQ(out, KernelIsa::kAvx2);  // untouched on failure
}

TEST(IsaDispatch, ScopedOverrideForcesAndRestores) {
  const KernelIsa ambient = ActiveIsa();
  {
    ScopedIsaOverride force(KernelIsa::kPortable);
    EXPECT_EQ(ActiveIsa(), KernelIsa::kPortable);
    {
      // Nested overrides restore the OUTER override, not no-override.
      ScopedIsaOverride inner(DetectBestIsa());
      EXPECT_EQ(ActiveIsa(), DetectBestIsa());
    }
    EXPECT_EQ(ActiveIsa(), KernelIsa::kPortable);
  }
  EXPECT_EQ(ActiveIsa(), ambient);
}

TEST(IsaDispatch, OverrideAboveHostCapabilityClampsDown) {
  ScopedIsaOverride force(KernelIsa::kAvx512);
  // On an avx512 host this forces avx512; anywhere else it must clamp to
  // the detected best rather than dispatch an illegal kernel.
  EXPECT_EQ(ActiveIsa(), IsaSupported(KernelIsa::kAvx512)
                             ? KernelIsa::kAvx512
                             : DetectBestIsa());
}

TEST(IsaDispatch, SelectorsNeverReturnNullAndHonorPortable) {
  for (KernelIsa isa : {KernelIsa::kPortable, KernelIsa::kAvx2,
                        KernelIsa::kAvx512}) {
    EXPECT_NE(internal::SelectMicroKernel(isa), nullptr);
    EXPECT_NE(internal::SelectAndPopcount(isa), nullptr);
    EXPECT_NE(internal::SelectAnyAnd(isa), nullptr);
    EXPECT_NE(internal::SelectExpandRow(isa), nullptr);
  }
  EXPECT_EQ(internal::SelectMicroKernel(KernelIsa::kPortable),
            &internal::MicroKernelPortable);
  EXPECT_EQ(internal::SelectAndPopcount(KernelIsa::kPortable),
            &internal::AndPopcountPortable);
  EXPECT_EQ(internal::SelectAnyAnd(KernelIsa::kPortable),
            &internal::AnyAndPortable);
  EXPECT_EQ(internal::SelectExpandRow(KernelIsa::kPortable),
            &internal::ExpandRowPortable);
  // kAvx2 has no sparse-expansion variant: shares portable.
  EXPECT_EQ(internal::SelectExpandRow(KernelIsa::kAvx2),
            &internal::ExpandRowPortable);
  // When the binary carries the AVX-512 TUs, the avx512 selectors must
  // return them, not the portable fallback.
  if (internal::Avx512MicroKernel() != nullptr) {
    EXPECT_EQ(internal::SelectMicroKernel(KernelIsa::kAvx512),
              internal::Avx512MicroKernel());
  }
}

TEST(IsaDispatch, GaugeTracksActiveIsa) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("jpmm_isa");
  {
    ScopedIsaOverride force(KernelIsa::kPortable);
    (void)ActiveIsa();
    EXPECT_EQ(gauge.value(), 0);
  }
  if (IsaSupported(KernelIsa::kAvx2)) {
    ScopedIsaOverride force(KernelIsa::kAvx2);
    (void)ActiveIsa();
    EXPECT_EQ(gauge.value(), 1);
  }
  (void)ActiveIsa();
  EXPECT_EQ(gauge.value(), static_cast<int64_t>(ActiveIsa()));
}

// Regression: MatMulCalibration::Default() used to be one process-wide
// singleton measured under whatever ISA ran first; a later JPMM_ISA
// override silently reused those foreign rates. Now the cache keys by
// ActiveIsa(): same level -> same instance, different level -> a separate
// re-measured instance.
TEST(IsaDispatch, CalibrationRemeasuresPerForcedIsa) {
  const MatMulCalibration* portable_cal;
  const BoolKernelRates* portable_bool;
  {
    ScopedIsaOverride force(KernelIsa::kPortable);
    portable_cal = &MatMulCalibration::Default();
    portable_bool = &BoolKernelRates::Default();
    // Same level: cached, no re-measure.
    EXPECT_EQ(&MatMulCalibration::Default(), portable_cal);
    EXPECT_EQ(&BoolKernelRates::Default(), portable_bool);
  }
  const KernelIsa best = DetectBestIsa();
  if (best == KernelIsa::kPortable) {
    GTEST_SKIP() << "host has a single dispatch level";
  }
  ScopedIsaOverride force(best);
  EXPECT_NE(&MatMulCalibration::Default(), portable_cal);
  EXPECT_NE(&BoolKernelRates::Default(), portable_bool);
  EXPECT_EQ(&MatMulCalibration::Default(), &MatMulCalibration::Default());
}

}  // namespace
}  // namespace jpmm
