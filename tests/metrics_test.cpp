// Unit tests for common/metrics: counters, gauges, sharded histograms,
// the process-wide registry, and its Prometheus/JSON exports.
//
// The load-bearing properties:
//   - shard-merge determinism: the same multiset of recorded values yields
//     byte-identical snapshots regardless of how many threads recorded it;
//   - registry concurrency: Get* + Add from many threads races cleanly
//     (this file is in CI's TSAN matrix) and never loses an increment;
//   - the enabled gate: registry-owned instruments no-op when metrics are
//     off, standalone instances (bench tallies) always record.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace jpmm {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetForTest();
  }
};

TEST_F(MetricsTest, CounterAddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GaugeUpDown) {
  Gauge g;
  g.Add(5);
  g.Sub(2);
  EXPECT_EQ(g.value(), 3);
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST_F(MetricsTest, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = MetricsRegistry::Global().GetCounter("test_counter_total");
  Counter& b = MetricsRegistry::Global().GetCounter("test_counter_total");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);

  Histogram& h1 =
      MetricsRegistry::Global().GetHistogram("test_h_ms", {1.0, 2.0});
  // Second caller's bounds are ignored; the first registration wins.
  Histogram& h2 =
      MetricsRegistry::Global().GetHistogram("test_h_ms", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST_F(MetricsTest, HistogramBucketSemantics) {
  // Prometheus `le`: a value lands in the first bucket with v <= bound.
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);    // le 1
  h.Record(1.0);    // le 1 (inclusive upper bound)
  h.Record(5.0);    // le 10
  h.Record(100.0);  // le 100
  h.Record(1e6);    // overflow
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST_F(MetricsTest, PercentileInterpolation) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) h.Record(5.0);  // all in [0, 10]
  const HistogramSnapshot s = h.Snapshot();
  // Uniform-in-bucket assumption: p50 of 100 samples in [0,10] = 5.
  EXPECT_NEAR(s.Percentile(50.0), 5.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100.0), 10.0, 1e-9);
  EXPECT_EQ(HistogramSnapshot{}.Percentile(50.0), 0.0);

  Histogram h2({10.0, 20.0});
  h2.Record(1e9);  // overflow only
  // Overflow-bucket percentiles report the largest finite bound.
  EXPECT_DOUBLE_EQ(h2.Snapshot().Percentile(99.0), 20.0);
}

// The same multiset of values, recorded by 1 / 4 / 16 threads, must merge
// to identical snapshots: bucket sums commute, so shard layout is
// unobservable.
TEST_F(MetricsTest, ShardMergeDeterministicAcrossThreadCounts) {
  const std::vector<double>& bounds = DefaultLatencyBoundsMs();
  constexpr int kValues = 4096;
  auto value_at = [](int i) {
    return 0.01 * static_cast<double>((i * 2654435761u) % 100000);
  };

  HistogramSnapshot base;
  std::vector<uint64_t> base_counts;
  bool first = true;
  for (int threads : {1, 4, 16}) {
    Histogram h(bounds);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = t; i < kValues; i += threads) h.Record(value_at(i));
      });
    }
    for (auto& w : workers) w.join();
    const HistogramSnapshot s = h.Snapshot();
    EXPECT_EQ(s.count, static_cast<uint64_t>(kValues));
    if (first) {
      base = s;
      first = false;
    } else {
      EXPECT_EQ(s.counts, base.counts) << "thread count " << threads;
      // Sums are added in shard order, not record order; with a fixed
      // multiset they still agree to floating-point tolerance.
      EXPECT_NEAR(s.sum, base.sum, 1e-6 * std::abs(base.sum));
    }
  }
}

// Races Get* lookups against hot-path Adds on the same names; run under
// TSAN in CI. Every increment must survive.
TEST_F(MetricsTest, RegistryConcurrentGetAndAdd) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      for (int i = 0; i < kPerThread; ++i) {
        reg.GetCounter("race_counter_total").Add();
        reg.GetGauge("race_gauge").Add(1);
        reg.GetHistogram("race_hist_ms", DefaultLatencyBoundsMs())
            .Record(static_cast<double>(i % 50));
        if (i % 256 == 0) (void)reg.Snapshot();  // reader vs writer race
      }
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot s = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(s.counters.at("race_counter_total"),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.gauges.at("race_gauge"),
            static_cast<int64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.histograms.at("race_hist_ms").count,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(MetricsTest, EnabledGateStopsRegistryInstrumentsOnly) {
  Counter& gated = MetricsRegistry::Global().GetCounter("gated_total");
  Histogram& gated_h =
      MetricsRegistry::Global().GetHistogram("gated_ms", {1.0});
  Counter standalone;  // bench-tally style: never gated

  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  gated.Add();
  gated_h.Record(0.5);
  standalone.Add();
  EXPECT_EQ(gated.value(), 0u);
  EXPECT_EQ(gated_h.Snapshot().count, 0u);
  EXPECT_EQ(standalone.value(), 1u);

  SetMetricsEnabled(true);
  gated.Add();
  EXPECT_EQ(gated.value(), 1u);
}

TEST_F(MetricsTest, ExponentialBoundsShape) {
  const std::vector<double> b = ExponentialBounds(0.5, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  EXPECT_DOUBLE_EQ(b[3], 4.0);
  const std::vector<double>& lat = DefaultLatencyBoundsMs();
  ASSERT_FALSE(lat.empty());
  for (size_t i = 1; i < lat.size(); ++i) EXPECT_GT(lat[i], lat[i - 1]);
}

TEST_F(MetricsTest, PrometheusTextExport) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("exp_requests_total").Add(3);
  reg.GetGauge("exp_inflight").Set(2);
  Histogram& h = reg.GetHistogram("exp_latency_ms", {1.0, 10.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE exp_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("exp_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_latency_ms histogram"),
            std::string::npos);
  // `le` buckets are cumulative; +Inf equals _count.
  EXPECT_NE(text.find("exp_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("exp_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("exp_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("exp_latency_ms_count 3"), std::string::npos);
}

TEST_F(MetricsTest, JsonTextExport) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("j_total").Add(7);
  reg.GetHistogram("j_ms", {1.0}).Record(0.5);
  const std::string json = reg.JsonText();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"j_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"j_ms\""), std::string::npos);
}

TEST_F(MetricsTest, SnapshotAndResetForTest) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("reset_me_total");
  c.Add(9);
  EXPECT_EQ(reg.Snapshot().counters.at("reset_me_total"), 9u);
  reg.ResetForTest();
  // References stay valid; values are zeroed in place.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.Snapshot().counters.at("reset_me_total"), 0u);
}

}  // namespace
}  // namespace jpmm
