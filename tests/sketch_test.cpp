// Tests for the HyperLogLog sketch and the §9 sketch-based |OUT| estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/hash.h"
#include "common/hyperloglog.h"
#include "core/sketch_estimator.h"
#include "datagen/generators.h"
#include "datagen/presets.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

TEST(HyperLogLog, ExactOnSmallSets) {
  HyperLogLog hll(10);
  for (uint64_t v = 0; v < 100; ++v) hll.Add(Mix64(v));
  // Linear-counting regime: accurate to ~1 sigma of bucket occupancy.
  EXPECT_NEAR(hll.Estimate(), 100.0, 12.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(10);
  for (int rep = 0; rep < 50; ++rep) {
    for (uint64_t v = 0; v < 200; ++v) hll.Add(Mix64(v));
  }
  EXPECT_NEAR(hll.Estimate(), 200.0, 12.0);
}

TEST(HyperLogLog, WithinErrorBoundOnLargeSets) {
  HyperLogLog hll(10);  // sigma ~ 1.04/sqrt(1024) ~ 3.3%
  const uint64_t n = 200000;
  for (uint64_t v = 0; v < n; ++v) hll.Add(Mix64(v));
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(n), 0.12 * n);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(9), b(9), u(9);
  for (uint64_t v = 0; v < 5000; ++v) {
    a.Add(Mix64(v));
    u.Add(Mix64(v));
  }
  for (uint64_t v = 3000; v < 9000; ++v) {
    b.Add(Mix64(v));
    u.Add(Mix64(v));
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(HyperLogLog, ResetClears) {
  HyperLogLog hll(8);
  for (uint64_t v = 0; v < 1000; ++v) hll.Add(Mix64(v));
  hll.Reset();
  EXPECT_LT(hll.Estimate(), 1.0);
}

TEST(SketchEstimator, AccurateOnRandomInstances) {
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    BinaryRelation r = testutil::RandomRelation(300, 150, 4000, 1.0, seed);
    IndexedRelation ri(r);
    const double truth =
        static_cast<double>(testutil::OracleTwoPath(r, r).size());
    const double est =
        static_cast<double>(EstimateTwoPathOutputSketch(ri, ri));
    EXPECT_NEAR(est, truth, 0.25 * truth) << "seed=" << seed;
  }
}

TEST(SketchEstimator, AccurateOnDensePreset) {
  BinaryRelation rel = MakePreset(DatasetPreset::kJokes, 0.3);
  IndexedRelation idx(rel);
  const double truth =
      static_cast<double>(testutil::OracleTwoPath(rel, rel).size());
  const double est = static_cast<double>(EstimateTwoPathOutputSketch(idx, idx));
  EXPECT_NEAR(est, truth, 0.25 * truth);
}

TEST(SketchEstimator, PrecisionImprovesEstimate) {
  BinaryRelation r = testutil::RandomRelation(200, 100, 3000, 0.8, 41);
  IndexedRelation ri(r);
  const double truth =
      static_cast<double>(testutil::OracleTwoPath(r, r).size());
  SketchEstimatorOptions lo;
  lo.precision = 5;
  SketchEstimatorOptions hi;
  hi.precision = 12;
  const double err_lo = std::abs(
      static_cast<double>(EstimateTwoPathOutputSketch(ri, ri, lo)) - truth);
  const double err_hi = std::abs(
      static_cast<double>(EstimateTwoPathOutputSketch(ri, ri, hi)) - truth);
  // Not guaranteed pointwise, but at these sizes the high-precision sketch
  // should not be dramatically worse.
  EXPECT_LT(err_hi, err_lo + 0.15 * truth);
}

TEST(SketchEstimator, EmptyRelation) {
  BinaryRelation r;
  r.Finalize();
  IndexedRelation ri(r);
  EXPECT_EQ(EstimateTwoPathOutputSketch(ri, ri), 0u);
}

}  // namespace
}  // namespace jpmm
