// SCJ correctness tests: PRETTI, LIMIT+, PIEJoin and MM-SCJ against a
// brute-force oracle, plus pairwise agreement sweeps.

#include <gtest/gtest.h>

#include "common/stamp_set.h"
#include "datagen/generators.h"
#include "join/intersection.h"
#include "scj/limit_plus.h"
#include "scj/mm_scj.h"
#include "scj/piejoin.h"
#include "scj/pretti.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

ScjResult OracleScj(const SetFamily& fam) {
  ScjResult out;
  for (Value r = 0; r < fam.num_set_ids(); ++r) {
    if (fam.SetSize(r) == 0) continue;
    for (Value s = 0; s < fam.num_set_ids(); ++s) {
      if (s == r || fam.SetSize(s) == 0) continue;
      if (IsSubsetSorted(fam.Elements(r), fam.Elements(s))) {
        out.push_back(ContainmentPair{r, s});
      }
    }
  }
  CanonicalizeScj(&out);
  return out;
}

struct Instance {
  BinaryRelation rel;
  IndexedRelation idx;
  SetFamily fam;
  explicit Instance(BinaryRelation r)
      : rel(std::move(r)), idx(rel), fam(idx) {}
};

// Families with real containment structure: supersets are generated first,
// then random subsets of them, then noise sets.
Instance ContainmentInstance(uint32_t supersets, uint32_t subsets_per,
                             uint32_t dom, uint32_t super_size,
                             uint64_t seed) {
  Rng rng(seed);
  BinaryRelation rel;
  Value next_set = 0;
  std::vector<std::vector<Value>> supers;
  for (uint32_t i = 0; i < supersets; ++i) {
    std::vector<Value> elems;
    StampSet in_set(dom);
    while (elems.size() < super_size) {
      const auto e = static_cast<Value>(rng.NextBounded(dom));
      if (in_set.Insert(e)) elems.push_back(e);
    }
    for (Value e : elems) rel.Add(next_set, e);
    supers.push_back(elems);
    ++next_set;
  }
  for (const auto& sup : supers) {
    for (uint32_t j = 0; j < subsets_per; ++j) {
      const uint64_t size = 1 + rng.NextBounded(sup.size());
      // Random distinct positions.
      std::vector<Value> pool = sup;
      for (uint64_t t = 0; t < size; ++t) {
        const uint64_t pick = t + rng.NextBounded(pool.size() - t);
        std::swap(pool[t], pool[pick]);
        rel.Add(next_set, pool[t]);
      }
      ++next_set;
    }
  }
  // Noise sets.
  for (uint32_t i = 0; i < supersets * 2; ++i) {
    const uint64_t size = 1 + rng.NextBounded(6);
    StampSet in_set(dom);
    for (uint64_t t = 0; t < size; ++t) {
      const auto e = static_cast<Value>(rng.NextBounded(dom));
      if (in_set.Insert(e)) rel.Add(next_set, e);
    }
    ++next_set;
  }
  rel.Finalize();
  return Instance(std::move(rel));
}

struct ScjParam {
  uint32_t supersets, subsets_per, dom, super_size;
  uint64_t seed;
};

class ScjSweep : public ::testing::TestWithParam<ScjParam> {};

TEST_P(ScjSweep, PrettiMatchesOracle) {
  const ScjParam p = GetParam();
  Instance inst = ContainmentInstance(p.supersets, p.subsets_per, p.dom,
                                      p.super_size, p.seed);
  EXPECT_EQ(PrettiJoin(inst.fam), OracleScj(inst.fam));
}

TEST_P(ScjSweep, LimitPlusMatchesOracle) {
  const ScjParam p = GetParam();
  Instance inst = ContainmentInstance(p.supersets, p.subsets_per, p.dom,
                                      p.super_size, p.seed + 1);
  EXPECT_EQ(LimitPlusJoin(inst.fam), OracleScj(inst.fam));
}

TEST_P(ScjSweep, PieJoinMatchesOracle) {
  const ScjParam p = GetParam();
  Instance inst = ContainmentInstance(p.supersets, p.subsets_per, p.dom,
                                      p.super_size, p.seed + 2);
  EXPECT_EQ(PieJoin(inst.fam), OracleScj(inst.fam));
}

TEST_P(ScjSweep, MmScjMatchesOracle) {
  const ScjParam p = GetParam();
  Instance inst = ContainmentInstance(p.supersets, p.subsets_per, p.dom,
                                      p.super_size, p.seed + 3);
  EXPECT_EQ(MmScj(inst.fam), OracleScj(inst.fam));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScjSweep,
    ::testing::Values(ScjParam{5, 4, 50, 10, 301},
                      ScjParam{8, 3, 30, 8, 302},   // denser overlap
                      ScjParam{3, 10, 80, 15, 303}, // many subsets
                      ScjParam{10, 2, 200, 6, 304}, // sparse
                      ScjParam{4, 5, 25, 12, 305}));

TEST(Scj, AllFourAgreeOnSkewedFamily) {
  BipartiteSpec spec;
  spec.num_sets = 80;
  spec.dom_size = 40;
  spec.min_set_size = 1;
  spec.max_set_size = 10;
  spec.size_skew = 1.0;
  spec.element_skew = 1.0;
  spec.seed = 311;
  Instance inst{MakeBipartite(spec)};
  const ScjResult oracle = OracleScj(inst.fam);
  EXPECT_EQ(PrettiJoin(inst.fam), oracle);
  EXPECT_EQ(LimitPlusJoin(inst.fam), oracle);
  EXPECT_EQ(PieJoin(inst.fam), oracle);
  EXPECT_EQ(MmScj(inst.fam), oracle);
}

TEST(Scj, ThreadsDoNotChangeParallelAlgorithms) {
  Instance inst = ContainmentInstance(6, 5, 60, 10, 321);
  const ScjResult oracle = OracleScj(inst.fam);
  for (int threads : {2, 4}) {
    ScjOptions opts;
    opts.threads = threads;
    EXPECT_EQ(LimitPlusJoin(inst.fam, opts), oracle);
    EXPECT_EQ(PieJoin(inst.fam, opts), oracle);
    EXPECT_EQ(MmScj(inst.fam, opts), oracle);
  }
}

TEST(Scj, EqualSetsContainEachOther) {
  BinaryRelation rel;
  for (Value e : {3u, 5u}) {
    rel.Add(0, e);
    rel.Add(1, e);
  }
  rel.Finalize();
  Instance inst(std::move(rel));
  const ScjResult expected = {{0, 1}, {1, 0}};
  EXPECT_EQ(PrettiJoin(inst.fam), expected);
  EXPECT_EQ(LimitPlusJoin(inst.fam), expected);
  EXPECT_EQ(PieJoin(inst.fam), expected);
  EXPECT_EQ(MmScj(inst.fam), expected);
}

TEST(Scj, SingletonChain) {
  // {0} subset {0,1} subset {0,1,2}.
  BinaryRelation rel;
  rel.Add(0, 0);
  rel.Add(1, 0);
  rel.Add(1, 1);
  rel.Add(2, 0);
  rel.Add(2, 1);
  rel.Add(2, 2);
  rel.Finalize();
  Instance inst(std::move(rel));
  const ScjResult expected = {{0, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(PrettiJoin(inst.fam), expected);
  EXPECT_EQ(LimitPlusJoin(inst.fam), expected);
  EXPECT_EQ(PieJoin(inst.fam), expected);
  EXPECT_EQ(MmScj(inst.fam), expected);
}

TEST(Scj, NoContainments) {
  // Pairwise-disjoint sets.
  BinaryRelation rel;
  rel.Add(0, 0);
  rel.Add(1, 1);
  rel.Add(2, 2);
  rel.Finalize();
  Instance inst(std::move(rel));
  EXPECT_TRUE(PrettiJoin(inst.fam).empty());
  EXPECT_TRUE(LimitPlusJoin(inst.fam).empty());
  EXPECT_TRUE(PieJoin(inst.fam).empty());
  EXPECT_TRUE(MmScj(inst.fam).empty());
}

TEST(Scj, LimitParameterVariants) {
  Instance inst = ContainmentInstance(5, 4, 40, 8, 331);
  const ScjResult oracle = OracleScj(inst.fam);
  for (uint32_t limit : {1u, 2u, 3u, 10u}) {
    ScjOptions opts;
    opts.limit = limit;
    EXPECT_EQ(LimitPlusJoin(inst.fam, opts), oracle) << "limit=" << limit;
  }
}

TEST(Scj, MmScjNonMmStrategyAgrees) {
  Instance inst = ContainmentInstance(5, 5, 50, 9, 341);
  EXPECT_EQ(MmScj(inst.fam, {}, Strategy::kAuto),
            MmScj(inst.fam, {}, Strategy::kNonMmJoin));
}

}  // namespace
}  // namespace jpmm
