// Tests for the AYZ-style triangle counting extension (§9 future work).

#include <gtest/gtest.h>

#include "core/triangle.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

// Symmetric random graph (no self loops).
BinaryRelation RandomGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  Rng rng(seed);
  BinaryRelation g;
  for (uint32_t i = 0; i < edges; ++i) {
    const auto u = static_cast<Value>(rng.NextBounded(n));
    const auto v = static_cast<Value>(rng.NextBounded(n));
    if (u == v) continue;
    g.Add(u, v);
    g.Add(v, u);
  }
  g.Finalize();
  return g;
}

// O(n^3) oracle.
uint64_t OracleTriangles(const IndexedRelation& g) {
  uint64_t count = 0;
  for (Value a = 0; a < g.num_x(); ++a) {
    for (Value b = a + 1; b < g.num_x(); ++b) {
      if (!g.Contains(a, b)) continue;
      for (Value c = b + 1; c < g.num_x(); ++c) {
        if (g.Contains(a, c) && g.Contains(b, c)) ++count;
      }
    }
  }
  return count;
}

TEST(Triangle, SingleTriangle) {
  BinaryRelation g;
  for (auto [u, v] : {std::pair<Value, Value>{0, 1}, {1, 2}, {0, 2}}) {
    g.Add(u, v);
    g.Add(v, u);
  }
  g.Finalize();
  IndexedRelation gi(g);
  EXPECT_EQ(CountTrianglesNodeIterator(gi), 1u);
  EXPECT_EQ(CountTrianglesMm(gi).triangles, 1u);
}

TEST(Triangle, CompleteGraphK6) {
  BinaryRelation g;
  for (Value u = 0; u < 6; ++u) {
    for (Value v = 0; v < 6; ++v) {
      if (u != v) g.Add(u, v);
    }
  }
  g.Finalize();
  IndexedRelation gi(g);
  // C(6,3) = 20 triangles.
  EXPECT_EQ(CountTrianglesNodeIterator(gi), 20u);
  for (uint64_t delta : {1ull, 2ull, 3ull, 10ull}) {
    TriangleCountOptions opts;
    opts.delta = delta;
    EXPECT_EQ(CountTrianglesMm(gi, opts).triangles, 20u) << delta;
  }
}

TEST(Triangle, TriangleFreeBipartite) {
  BinaryRelation g;
  for (Value u = 0; u < 10; ++u) {
    for (Value v = 10; v < 20; ++v) {
      g.Add(u, v);
      g.Add(v, u);
    }
  }
  g.Finalize();
  IndexedRelation gi(g);
  EXPECT_EQ(CountTrianglesMm(gi).triangles, 0u);
  EXPECT_EQ(CountTrianglesNodeIterator(gi), 0u);
}

class TriangleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleSweep, MatchesOracleAcrossThresholds) {
  const uint64_t seed = GetParam();
  BinaryRelation g = RandomGraph(40, 250, seed);
  IndexedRelation gi(g);
  const uint64_t expected = OracleTriangles(gi);
  EXPECT_EQ(CountTrianglesNodeIterator(gi), expected);
  for (uint64_t delta : {1ull, 3ull, 8ull, 1000ull}) {
    TriangleCountOptions opts;
    opts.delta = delta;
    const auto res = CountTrianglesMm(gi, opts);
    EXPECT_EQ(res.triangles, expected) << "seed=" << seed
                                       << " delta=" << delta;
    EXPECT_EQ(res.light_triangles + res.heavy_triangles, res.triangles);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Triangle, CommunityGraph) {
  BinaryRelation g = CommunityGraph(3, 20, 1.0, 5);
  IndexedRelation gi(g);
  // 3 complete communities of 20: 3 * C(20,3) triangles.
  const uint64_t expected = 3 * 1140;
  EXPECT_EQ(CountTrianglesNodeIterator(gi), expected);
  EXPECT_EQ(CountTrianglesMm(gi).triangles, expected);
}

TEST(Triangle, ThreadsDoNotChangeCount) {
  BinaryRelation g = RandomGraph(60, 600, 99);
  IndexedRelation gi(g);
  const uint64_t ref = CountTrianglesMm(gi).triangles;
  for (int threads : {2, 4}) {
    TriangleCountOptions opts;
    opts.threads = threads;
    EXPECT_EQ(CountTrianglesMm(gi, opts).triangles, ref);
  }
}

TEST(Triangle, MemoryCapDegrades) {
  BinaryRelation g = RandomGraph(80, 1200, 7);
  IndexedRelation gi(g);
  TriangleCountOptions opts;
  opts.delta = 1;
  opts.max_matrix_bytes = 64;  // absurd cap: force threshold doubling
  const auto res = CountTrianglesMm(gi, opts);
  EXPECT_GT(res.delta_used, 1u);
  EXPECT_EQ(res.triangles, CountTrianglesNodeIterator(gi));
}

TEST(Triangle, EmptyAndTinyGraphs) {
  BinaryRelation empty;
  empty.Finalize();
  IndexedRelation ei(empty);
  EXPECT_EQ(CountTrianglesMm(ei).triangles, 0u);

  BinaryRelation edge;
  edge.Add(0, 1);
  edge.Add(1, 0);
  edge.Finalize();
  IndexedRelation edgei(edge);
  EXPECT_EQ(CountTrianglesMm(edgei).triangles, 0u);
}

}  // namespace
}  // namespace jpmm
