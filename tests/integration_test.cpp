// Cross-module integration tests: presets flowing through every engine,
// optimizer plan choices on characteristic inputs, loader-to-join paths.

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "bsi/workload.h"
#include "core/join_project.h"
#include "datagen/generators.h"
#include "datagen/presets.h"
#include "scj/limit_plus.h"
#include "scj/mm_scj.h"
#include "scj/piejoin.h"
#include "scj/pretti.h"
#include "ssj/mm_ssj.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"
#include "storage/loader.h"
#include "storage/set_family.h"

namespace jpmm {
namespace {

struct Instance {
  BinaryRelation rel;
  IndexedRelation idx;
  SetFamily fam;
  explicit Instance(BinaryRelation r)
      : rel(std::move(r)), idx(rel), fam(idx) {}
};

class PresetPipeline : public ::testing::TestWithParam<DatasetPreset> {};

TEST_P(PresetPipeline, AllJoinStrategiesAgree) {
  Instance inst(MakePreset(GetParam(), 0.08));
  JoinProjectOptions opts;
  opts.sorted = true;
  opts.strategy = Strategy::kMmJoin;
  const auto mm = JoinProject::TwoPath(inst.idx, inst.idx, opts);
  opts.strategy = Strategy::kNonMmJoin;
  const auto nonmm = JoinProject::TwoPath(inst.idx, inst.idx, opts);
  opts.strategy = Strategy::kWcojFull;
  const auto wcoj = JoinProject::TwoPath(inst.idx, inst.idx, opts);
  EXPECT_EQ(mm.pairs, nonmm.pairs);
  EXPECT_EQ(mm.pairs, wcoj.pairs);
  EXPECT_GT(mm.pairs.size(), 0u);
}

TEST_P(PresetPipeline, SsjEnginesAgree) {
  Instance inst(MakePreset(GetParam(), 0.05));
  SsjOptions opts;
  opts.c = 2;
  const SsjResult a = SizeAwareJoin(inst.fam, opts);
  EXPECT_EQ(a, SizeAwarePlusPlus(inst.fam, opts));
  EXPECT_EQ(a, MmSsj(inst.fam, opts));
}

TEST_P(PresetPipeline, ScjEnginesAgree) {
  Instance inst(MakePreset(GetParam(), 0.05));
  const ScjResult a = PrettiJoin(inst.fam);
  EXPECT_EQ(a, LimitPlusJoin(inst.fam));
  EXPECT_EQ(a, PieJoin(inst.fam));
  EXPECT_EQ(a, MmScj(inst.fam));
}

TEST_P(PresetPipeline, BsiStrategiesAgree) {
  Instance inst(MakePreset(GetParam(), 0.05));
  auto batch = SampleBsiWorkload(inst.fam, inst.fam, 150, 5);
  const auto per_query = BsiAnswerPerQuery(inst.fam, inst.fam, batch);
  EXPECT_EQ(BsiAnswerBatchMm(inst.fam, inst.fam, batch), per_query);
  EXPECT_EQ(BsiAnswerBatchNonMm(inst.fam, inst.fam, batch), per_query);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetPipeline,
    ::testing::Values(DatasetPreset::kDblp, DatasetPreset::kRoadNet,
                      DatasetPreset::kJokes, DatasetPreset::kWords,
                      DatasetPreset::kProtein, DatasetPreset::kImage),
    [](const ::testing::TestParamInfo<DatasetPreset>& param_info) {
      return PresetName(param_info.param);
    });

TEST(OptimizerIntegration, SparsePresetsChooseFullJoin) {
  // Paper §7.2: "the optimizer chooses to compute the full join" for
  // RoadNet and DBLP.
  for (DatasetPreset p : {DatasetPreset::kRoadNet, DatasetPreset::kDblp}) {
    Instance inst(MakePreset(p, 0.2));
    JoinProjectOptions opts;
    auto out = JoinProject::TwoPath(inst.idx, inst.idx, opts);
    EXPECT_TRUE(out.plan.use_full_wcoj) << PresetName(p);
    EXPECT_EQ(out.executed, Strategy::kWcojFull) << PresetName(p);
  }
}

TEST(OptimizerIntegration, DensePresetsChooseMmJoin) {
  for (DatasetPreset p : {DatasetPreset::kJokes, DatasetPreset::kProtein,
                          DatasetPreset::kImage}) {
    Instance inst(MakePreset(p, 0.4));
    JoinProjectOptions opts;
    auto out = JoinProject::TwoPath(inst.idx, inst.idx, opts);
    EXPECT_FALSE(out.plan.use_full_wcoj) << PresetName(p);
    EXPECT_EQ(out.executed, Strategy::kMmJoin) << PresetName(p);
  }
}

TEST(Example1Integration, CommunityGraphDuplicationRegime) {
  // Example 1: |OUT_join| = Theta(N^{3/2}), |OUT| = Theta(N).
  BinaryRelation g = CommunityGraph(4, 48, 0.8, 3);
  IndexedRelation idx(g);
  JoinProjectOptions opts;
  auto out = JoinProject::TwoPath(idx, idx, opts);
  const double n = static_cast<double>(g.size());
  EXPECT_GT(static_cast<double>(out.plan.full_join_size), 4.0 * n);
  EXPECT_LT(static_cast<double>(out.size()), 4.0 * n);
}

TEST(LoaderIntegration, TextToJoinPipeline) {
  const std::string text = "0 10\n1 10\n2 11\n0 11\n";
  auto rel = ParseEdgeList(text);
  ASSERT_TRUE(rel.has_value());
  JoinProjectOptions opts;
  opts.sorted = true;
  auto out = JoinProject::TwoPath(*rel, *rel, opts);
  // {0,1} share 10; {0,2} share 11; plus reflexive pairs.
  const std::vector<OutPair> expected = {{0, 0}, {0, 1}, {0, 2}, {1, 0},
                                         {1, 1}, {2, 0}, {2, 2}};
  EXPECT_EQ(out.pairs, expected);
}

TEST(StarIntegration, TriangleOfViewsOnPreset) {
  Instance inst(MakePreset(DatasetPreset::kJokes, 0.04));
  std::vector<const IndexedRelation*> rels = {&inst.idx, &inst.idx,
                                              &inst.idx};
  JoinProjectOptions mm_opts;
  mm_opts.strategy = Strategy::kMmJoin;
  auto mm = JoinProject::Star(rels, mm_opts);
  JoinProjectOptions wcoj_opts;
  wcoj_opts.strategy = Strategy::kWcojFull;
  auto wcoj = JoinProject::Star(rels, wcoj_opts);
  EXPECT_EQ(mm.tuples.flat(), wcoj.tuples.flat());
}

}  // namespace
}  // namespace jpmm
