// Unit tests for src/join: intersection kernels, full-join baselines, star
// WCOJ enumeration, TupleBuffer.

#include <gtest/gtest.h>

#include <vector>

#include "join/dbms_baselines.h"
#include "join/hash_join.h"
#include "join/intersection.h"
#include "join/sort_merge_join.h"
#include "join/star_wcoj.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleStar;
using testutil::OracleTwoPath;
using testutil::RandomRelation;
using testutil::Sorted;
using testutil::ToVectors;

std::vector<Value> V(std::initializer_list<Value> v) { return v; }

TEST(Intersection, MergeBasics) {
  std::vector<Value> out;
  EXPECT_EQ(IntersectSorted(V({1, 3, 5}), V({2, 3, 5, 9}), &out), 2u);
  EXPECT_EQ(out, V({3, 5}));
}

TEST(Intersection, EmptyInputs) {
  std::vector<Value> out;
  EXPECT_EQ(IntersectSorted({}, V({1, 2}), &out), 0u);
  EXPECT_EQ(IntersectCount(V({1, 2}), {}), 0u);
  EXPECT_FALSE(IntersectsSorted({}, {}));
}

TEST(Intersection, CountMatchesMaterialized) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> a, b;
    for (Value v = 0; v < 300; ++v) {
      if (rng.NextBool(0.3)) a.push_back(v);
      if (rng.NextBool(0.1)) b.push_back(v);
    }
    std::vector<Value> out;
    const size_t n = IntersectSorted(a, b, &out);
    EXPECT_EQ(IntersectCount(a, b), n);
    EXPECT_EQ(IntersectsSorted(a, b), n > 0);
  }
}

TEST(Intersection, GallopingLopsidedLists) {
  // Small list vs huge list triggers the galloping path (>32x ratio).
  std::vector<Value> big;
  for (Value v = 0; v < 10000; v += 2) big.push_back(v);
  EXPECT_EQ(IntersectCount(V({5000, 5001, 9998}), big), 2u);
  EXPECT_TRUE(IntersectsSorted(V({9998}), big));
  EXPECT_FALSE(IntersectsSorted(V({9999}), big));
}

TEST(Intersection, SubsetChecks) {
  EXPECT_TRUE(IsSubsetSorted(V({2, 4}), V({1, 2, 3, 4})));
  EXPECT_TRUE(IsSubsetSorted({}, V({1})));
  EXPECT_FALSE(IsSubsetSorted(V({2, 5}), V({1, 2, 3, 4})));
  EXPECT_FALSE(IsSubsetSorted(V({1, 2}), V({1})));
}

TEST(Intersection, KWayUnionDedups) {
  std::vector<Value> l1 = {1, 3, 5};
  std::vector<Value> l2 = {1, 2, 5, 8};
  std::vector<Value> l3 = {8};
  std::vector<Value> out;
  EXPECT_EQ(KWayUnion({l1, l2, l3}, &out), 5u);
  EXPECT_EQ(out, V({1, 2, 3, 5, 8}));
}

TEST(Intersection, KWayUnionEmpty) {
  std::vector<Value> out;
  EXPECT_EQ(KWayUnion({}, &out), 0u);
}

TEST(FullJoin, SizeMatchesEnumeration) {
  BinaryRelation r = RandomRelation(30, 20, 150, 0.8, 1);
  BinaryRelation s = RandomRelation(25, 20, 120, 0.8, 2);
  IndexedRelation ri(r), si(s);
  uint64_t count = 0;
  EnumerateFullTwoPathJoin(ri, si, [&](Value, Value, Value) { ++count; });
  EXPECT_EQ(count, FullTwoPathJoinSize(ri, si));
}

class DedupModeTest : public ::testing::TestWithParam<DedupMode> {};

TEST_P(DedupModeTest, HashJoinProjectMatchesOracle) {
  BinaryRelation r = RandomRelation(40, 25, 200, 1.0, 3);
  BinaryRelation s = RandomRelation(35, 25, 180, 1.0, 4);
  IndexedRelation ri(r), si(s);
  EXPECT_EQ(Sorted(HashJoinProject(ri, si, GetParam())), OracleTwoPath(r, s));
}

INSTANTIATE_TEST_SUITE_P(AllModes, DedupModeTest,
                         ::testing::Values(DedupMode::kSortUnique,
                                           DedupMode::kHashSet,
                                           DedupMode::kPreallocatedHash));

TEST(Baselines, AllEnginesAgreeWithOracle) {
  BinaryRelation r = RandomRelation(50, 30, 300, 1.1, 5);
  BinaryRelation s = RandomRelation(45, 30, 280, 1.1, 6);
  IndexedRelation ri(r), si(s);
  const auto oracle = OracleTwoPath(r, s);
  EXPECT_EQ(Sorted(PostgresLikeJoinProject(ri, si)), oracle);
  EXPECT_EQ(Sorted(MySqlLikeJoinProject(r, s)), oracle);
  EXPECT_EQ(Sorted(SystemXLikeJoinProject(ri, si)), oracle);
  EXPECT_EQ(Sorted(EmptyHeadedLikeJoinProject(ri, si)), oracle);
}

TEST(Baselines, SelfJoin) {
  BinaryRelation r = RandomRelation(30, 15, 120, 1.0, 7);
  IndexedRelation ri(r);
  const auto oracle = OracleTwoPath(r, r);
  EXPECT_EQ(Sorted(PostgresLikeJoinProject(ri, ri)), oracle);
  EXPECT_EQ(Sorted(EmptyHeadedLikeJoinProject(ri, ri)), oracle);
}

TEST(TupleBuffer, AddGetSortUnique) {
  TupleBuffer buf(2);
  buf.Add(V({3, 1}));
  buf.Add(V({1, 2}));
  buf.Add(V({3, 1}));
  buf.Add(V({1, 1}));
  EXPECT_EQ(buf.size(), 4u);
  buf.SortUnique();
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(ToVectors(buf),
            (std::vector<std::vector<Value>>{{1, 1}, {1, 2}, {3, 1}}));
}

TEST(TupleBuffer, AppendConcatenates) {
  TupleBuffer a(2), b(2);
  a.Add(V({1, 2}));
  b.Add(V({3, 4}));
  a.Append(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(StarWcoj, TwoRelationsMatchesTwoPathOracle) {
  BinaryRelation r = RandomRelation(20, 15, 80, 0.7, 8);
  BinaryRelation s = RandomRelation(18, 15, 70, 0.7, 9);
  IndexedRelation ri(r), si(s);
  TupleBuffer res = StarJoinProjectWcoj({&ri, &si});
  const auto oracle = OracleTwoPath(r, s);
  ASSERT_EQ(res.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(res.Get(i)[0], oracle[i].x);
    EXPECT_EQ(res.Get(i)[1], oracle[i].z);
  }
}

class StarArityTest : public ::testing::TestWithParam<int> {};

TEST_P(StarArityTest, MatchesOracle) {
  const int k = GetParam();
  std::vector<BinaryRelation> rels;
  std::vector<const BinaryRelation*> rel_ptrs;
  std::vector<IndexedRelation> idx;
  for (int i = 0; i < k; ++i) {
    rels.push_back(RandomRelation(12, 10, 40, 0.6, 100 + i));
  }
  for (int i = 0; i < k; ++i) {
    rel_ptrs.push_back(&rels[i]);
    idx.emplace_back(rels[i]);
  }
  std::vector<const IndexedRelation*> idx_ptrs;
  for (auto& x : idx) idx_ptrs.push_back(&x);

  TupleBuffer res = StarJoinProjectWcoj(idx_ptrs);
  EXPECT_EQ(ToVectors(res), OracleStar(rel_ptrs));
}

INSTANTIATE_TEST_SUITE_P(Arity, StarArityTest, ::testing::Values(2, 3, 4, 5));

TEST(StarWcoj, ThreadsProduceSameResult) {
  BinaryRelation r = RandomRelation(25, 20, 150, 0.9, 11);
  IndexedRelation ri(r);
  const auto ref = ToVectors(StarJoinProjectWcoj({&ri, &ri, &ri}));
  for (int threads : {2, 4}) {
    EXPECT_EQ(
        ToVectors(StarJoinProjectWcoj({&ri, &ri, &ri}, nullptr, nullptr,
                                      threads)),
        ref);
  }
}

TEST(StarWcoj, FiltersRestrictTuples) {
  BinaryRelation r;
  r.Add(0, 0);
  r.Add(1, 0);
  r.Finalize();
  IndexedRelation ri(r);
  // Filter out x = 1 in relation 0 only.
  TupleBuffer res = StarJoinProjectWcoj(
      {&ri, &ri},
      [](size_t rel, Value a, Value) { return rel != 0 || a == 0; });
  EXPECT_EQ(ToVectors(res),
            (std::vector<std::vector<Value>>{{0, 0}, {0, 1}}));
}

TEST(StarWcoj, YFilterRestrictsExpansion) {
  BinaryRelation r;
  r.Add(0, 0);
  r.Add(1, 1);
  r.Finalize();
  IndexedRelation ri(r);
  TupleBuffer res = StarJoinProjectWcoj({&ri, &ri}, nullptr,
                                        [](Value b) { return b == 1; });
  EXPECT_EQ(ToVectors(res), (std::vector<std::vector<Value>>{{1, 1}}));
}

TEST(StarWcoj, FullStarJoinSizeMatchesProduct) {
  BinaryRelation r = RandomRelation(15, 10, 60, 0.5, 12);
  IndexedRelation ri(r);
  uint64_t expected = 0;
  for (Value b = 0; b < ri.num_y(); ++b) {
    expected += static_cast<uint64_t>(ri.DegY(b)) * ri.DegY(b) * ri.DegY(b);
  }
  EXPECT_EQ(FullStarJoinSize({&ri, &ri, &ri}), expected);
}

TEST(SortMergeJoin, EmptyRelation) {
  BinaryRelation r, s;
  r.Finalize();
  s.Add(1, 1);
  s.Finalize();
  EXPECT_TRUE(SortMergeJoinProject(r, s).empty());
}

}  // namespace
}  // namespace jpmm
