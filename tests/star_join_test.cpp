// Tests for the star-join MMJoin (§3.2) and its combinatorial comparator.

#include <gtest/gtest.h>

#include "core/star_join.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleStar;
using testutil::RandomRelation;
using testutil::ToVectors;

struct StarFixture {
  std::vector<BinaryRelation> rels;
  std::vector<IndexedRelation> idx;
  std::vector<const IndexedRelation*> idx_ptrs;
  std::vector<const BinaryRelation*> rel_ptrs;

  StarFixture(int k, uint32_t nx, uint32_t ny, uint32_t tuples, double skew,
              uint64_t seed) {
    for (int i = 0; i < k; ++i) {
      rels.push_back(RandomRelation(nx, ny, tuples, skew, seed + i));
    }
    for (int i = 0; i < k; ++i) {
      idx.emplace_back(rels[i]);
      rel_ptrs.push_back(&rels[i]);
    }
    for (auto& x : idx) idx_ptrs.push_back(&x);
  }
};

struct StarParam {
  int k;
  uint32_t nx, ny, tuples;
  double skew;
  uint64_t d1, d2;
  int threads;
};

class StarSweep : public ::testing::TestWithParam<StarParam> {};

TEST_P(StarSweep, MmStarMatchesOracle) {
  const StarParam p = GetParam();
  StarFixture f(p.k, p.nx, p.ny, p.tuples, p.skew, 200);
  StarJoinOptions opts;
  opts.thresholds = {p.d1, p.d2};
  opts.threads = p.threads;
  auto res = MmStarJoin(f.idx_ptrs, opts);
  EXPECT_EQ(ToVectors(res.tuples), OracleStar(f.rel_ptrs));
}

TEST_P(StarSweep, NonMmStarMatchesOracle) {
  const StarParam p = GetParam();
  StarFixture f(p.k, p.nx, p.ny, p.tuples, p.skew, 300);
  StarJoinOptions opts;
  opts.thresholds = {p.d1, p.d2};
  opts.threads = p.threads;
  auto res = NonMmStarJoin(f.idx_ptrs, opts);
  EXPECT_EQ(ToVectors(res.tuples), OracleStar(f.rel_ptrs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StarSweep,
    ::testing::Values(
        StarParam{2, 20, 15, 80, 0.8, 2, 2, 1},
        StarParam{3, 15, 12, 60, 0.8, 2, 2, 1},
        StarParam{3, 15, 12, 60, 0.8, 1, 1, 1},    // everything heavy-ish
        StarParam{3, 15, 12, 60, 0.8, 100, 100, 1},  // everything light
        StarParam{3, 18, 14, 80, 1.5, 3, 2, 2},    // skewed + threads
        StarParam{4, 10, 8, 36, 0.7, 2, 2, 1},
        StarParam{4, 10, 8, 36, 0.7, 1, 2, 2},
        StarParam{5, 8, 6, 24, 0.5, 1, 1, 1}));

TEST(StarJoin, DenseBlockGoesThroughMatrix) {
  // One shared dense y-block: all x heavy, y heavy in all relations.
  BinaryRelation r;
  for (Value a = 0; a < 8; ++a) {
    for (Value b = 0; b < 8; ++b) r.Add(a, b);
  }
  r.Finalize();
  IndexedRelation ri(r);
  StarJoinOptions opts;
  opts.thresholds = {2, 2};
  auto res = MmStarJoin({&ri, &ri, &ri}, opts);
  EXPECT_GT(res.v_rows, 0u);
  EXPECT_GT(res.w_rows, 0u);
  EXPECT_GT(res.heavy_y, 0u);
  EXPECT_EQ(res.tuples.size(), 8u * 8 * 8);
}

TEST(StarJoin, MemoryCapDegradesGracefully) {
  BinaryRelation r;
  for (Value a = 0; a < 12; ++a) {
    for (Value b = 0; b < 12; ++b) r.Add(a, b);
  }
  r.Finalize();
  IndexedRelation ri(r);
  StarJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.max_matrix_bytes = 256;  // forces threshold doubling
  auto res = MmStarJoin({&ri, &ri}, opts);
  EXPECT_GT(res.adjusted_thresholds.delta1, 1u);
  EXPECT_EQ(res.tuples.size(), 12u * 12);
}

TEST(StarJoin, DifferentRelationsPerPosition) {
  StarFixture f(3, 14, 10, 50, 1.0, 400);
  StarJoinOptions opts;
  opts.thresholds = {2, 3};
  auto mm = MmStarJoin(f.idx_ptrs, opts);
  auto nonmm = NonMmStarJoin(f.idx_ptrs, opts);
  auto wcoj = WcojStarJoin(f.idx_ptrs);
  const auto oracle = OracleStar(f.rel_ptrs);
  EXPECT_EQ(ToVectors(mm.tuples), oracle);
  EXPECT_EQ(ToVectors(nonmm.tuples), oracle);
  EXPECT_EQ(ToVectors(wcoj), oracle);
}

TEST(StarJoin, EmptyIntersectionProducesNothing) {
  BinaryRelation a, b;
  a.Add(0, 0);
  a.Finalize();
  b.Add(0, 1);
  b.Finalize();
  IndexedRelation ai(a), bi(b);
  StarJoinOptions opts;
  auto res = MmStarJoin({&ai, &bi}, opts);
  EXPECT_EQ(res.tuples.size(), 0u);
}

TEST(StarJoin, K2AgreesWithTwoPathSemantics) {
  StarFixture f(2, 25, 18, 120, 1.1, 500);
  StarJoinOptions opts;
  opts.thresholds = {2, 2};
  auto res = MmStarJoin(f.idx_ptrs, opts);
  EXPECT_EQ(ToVectors(res.tuples), OracleStar(f.rel_ptrs));
}

}  // namespace
}  // namespace jpmm
